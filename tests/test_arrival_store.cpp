// Property tests for the arena-resident arrival store.
//
// Two layers:
//  * prob::ArrivalStore in isolation — set/view round-trips, generation
//    invalidation, overwrite garbage accounting, and semispace
//    compaction preserving every live value bitwise;
//  * the store-backed SstaEngine against an independent reference
//    propagation (the heap-Pdf topological walk the engine used before
//    the store existed), across thread counts {1, 2, 7} and circuits
//    {c432, c7552, synth10k}, for full run() and for incremental
//    update() trajectories — the acceptance criterion of the refactor.
#include <gtest/gtest.h>

#include <vector>

#include "core/context.hpp"
#include "netlist/iscas.hpp"
#include "util/thread_pool.hpp"

namespace statim {
namespace {

using netlist::TimingGraph;

TEST(ArrivalStoreTest, SetViewRoundTripAndOverwrite) {
    prob::ArrivalStore store;
    store.begin_run(4);
    EXPECT_FALSE(store.has(0));

    const prob::Pdf a = prob::Pdf::from_mass(-3, {0.25, 0.5, 0.25});
    const prob::Pdf b = prob::Pdf::from_mass(7, {0.5, 0.5});
    store.set(0, a);
    store.set(3, b);
    ASSERT_TRUE(store.has(0));
    ASSERT_TRUE(store.has(3));
    EXPECT_FALSE(store.has(1));
    EXPECT_TRUE(store.view(0) == a);
    EXPECT_TRUE(store.view(3) == b);

    // Overwrite: the new value wins, live mass reflects the replacement.
    store.set(0, b);
    EXPECT_TRUE(store.view(0) == b);
    EXPECT_EQ(store.memory_stats().live_doubles, 2u * b.size());

    // A new generation invalidates every slot without clearing storage.
    store.begin_run(4);
    EXPECT_FALSE(store.has(0));
    EXPECT_FALSE(store.has(3));
    EXPECT_EQ(store.memory_stats().live_doubles, 0u);
}

TEST(ArrivalStoreTest, CompactionPreservesLiveValuesBitwise) {
    prob::ArrivalStore store;
    constexpr std::size_t kSlots = 64;
    store.begin_run(kSlots);

    // Distinct per-slot PDFs, then churn overwrites until the active
    // buffer is mostly garbage (well past the compaction floor).
    std::vector<prob::Pdf> expected;
    for (std::size_t i = 0; i < kSlots; ++i) {
        expected.push_back(prob::Pdf::from_mass(
            static_cast<std::int64_t>(i), {0.125, 0.25, 0.25, 0.25, 0.125}));
        store.set(i, expected.back());
    }
    for (int round = 0; round < 2000; ++round)
        for (std::size_t i = 0; i < 8; ++i) store.set(i, expected[i]);

    const auto before = store.memory_stats();
    ASSERT_GT(before.used_doubles, 2 * before.live_doubles);
    store.maybe_compact();
    const auto after = store.memory_stats();
    EXPECT_EQ(after.compactions, before.compactions + 1);
    EXPECT_EQ(after.live_doubles, before.live_doubles);
    EXPECT_LE(after.used_doubles - before.live_doubles, after.used_doubles);
    for (std::size_t i = 0; i < kSlots; ++i)
        EXPECT_TRUE(store.view(i) == expected[i]) << "slot " << i;
}

/// Reference propagation: the pre-store engine's arithmetic — heap Pdfs,
/// plain topological walk through the shared compute_arrival kernel.
std::vector<prob::Pdf> reference_arrivals(const core::Context& ctx) {
    const auto& graph = ctx.graph();
    std::vector<prob::Pdf> scratch(graph.node_count());
    scratch[TimingGraph::source().index()] = prob::Pdf::point(0);
    const auto arrival_of = [&scratch](NodeId u) -> const prob::Pdf& {
        return scratch[u.index()];
    };
    const auto delay_of = [&ctx](EdgeId e) -> const prob::Pdf& {
        return ctx.edge_delays().pdf(e);
    };
    for (NodeId n : graph.topo_order()) {
        if (n == TimingGraph::source()) continue;
        scratch[n.index()] = ssta::compute_arrival(graph, n, arrival_of, delay_of);
    }
    return scratch;
}

void expect_arrivals_equal(const core::Context& ctx,
                           const std::vector<prob::Pdf>& reference,
                           const char* what) {
    for (std::size_t n = 0; n < reference.size(); ++n)
        ASSERT_TRUE(ctx.engine().arrival(NodeId{static_cast<std::uint32_t>(n)}) ==
                    reference[n])
            << what << ": node " << n;
}

/// A deterministic mid-circuit resize trajectory (same recipe as
/// bench_parallel_ssta: spread over the gate ids).
std::vector<GateId> trajectory_for(const netlist::Netlist& nl, std::size_t count) {
    std::vector<GateId> gates;
    for (std::size_t i = 0; i < count; ++i)
        gates.push_back(GateId{static_cast<std::uint32_t>(
            (i * nl.gate_count()) / count + (nl.gate_count() / (2 * count)))});
    return gates;
}

class StoreBackedEngine : public ::testing::TestWithParam<const char*> {};

TEST_P(StoreBackedEngine, RunAndUpdateMatchReferenceAcrossThreads) {
    const cells::Library lib = cells::Library::standard_180nm();
    netlist::Netlist nl = netlist::make_iscas(GetParam(), lib);

    for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{7}}) {
        core::Context ctx(nl, lib);
        ctx.set_ssta_threads(threads);
        ctx.run_ssta();
        const std::vector<prob::Pdf> ref_run = reference_arrivals(ctx);
        expect_arrivals_equal(ctx, ref_run, "full run");

        // Incremental trajectory: each refresh must stay bitwise equal to
        // the reference recomputed from the current widths.
        for (GateId g : trajectory_for(nl, 6)) {
            (void)ctx.apply_resize(g, 0.25);
            ctx.refresh_ssta();
            ASSERT_FALSE(ctx.engine().last_update_stats().full_run);
            const std::vector<prob::Pdf> ref = reference_arrivals(ctx);
            expect_arrivals_equal(ctx, ref, "incremental update");
        }
        // Restore for the next thread count (nl is shared across them).
        for (GateId g : trajectory_for(nl, 6)) (void)ctx.apply_resize(g, -0.25);
    }
}

INSTANTIATE_TEST_SUITE_P(Circuits, StoreBackedEngine,
                         ::testing::Values("c432", "c7552", "synth10k"));

TEST(StoreBackedEngine, ManyUpdatesTriggerCompactionAndStayExact) {
    const cells::Library lib = cells::Library::standard_180nm();
    netlist::Netlist nl = netlist::make_iscas("c432", lib);
    core::Context ctx(nl, lib);
    ctx.run_ssta();

    // Alternate up/down resizes: every refresh overwrites the same cone's
    // arrivals, stranding garbage in the active buffer until the store
    // re-packs. 200 rounds comfortably clears the compaction floor.
    const std::vector<GateId> gates = trajectory_for(nl, 4);
    for (int round = 0; round < 100; ++round) {
        const double dw = (round % 2 == 0) ? 0.25 : -0.25;
        for (GateId g : gates) {
            (void)ctx.apply_resize(g, dw);
            ctx.refresh_ssta();
        }
    }
    const auto stats = ctx.engine().memory_stats();
    EXPECT_GT(stats.store.compactions, 0u)
        << "expected the churn to trigger at least one compaction "
        << "(used=" << stats.store.used_doubles
        << " live=" << stats.store.live_doubles << ")";
    // After an even number of rounds the widths are back at minimum size:
    // the store contents must equal a from-scratch reference.
    const std::vector<prob::Pdf> ref = reference_arrivals(ctx);
    expect_arrivals_equal(ctx, ref, "post-compaction state");
}

TEST(StoreBackedEngine, ScratchShrinkLimitTrimsArenas) {
    const cells::Library lib = cells::Library::standard_180nm();
    netlist::Netlist nl = netlist::make_iscas("c880", lib);
    core::Context ctx(nl, lib);
    // Multi-shard waves park results in the wave arenas (a single-shard
    // run writes the store directly and never grows them).
    ctx.set_ssta_threads(4);
    ctx.run_ssta();
    const auto grown = ctx.engine().memory_stats();
    ASSERT_GT(grown.wave_capacity_doubles, 0u);

    ctx.engine().set_scratch_shrink_limit(1);  // trim everything trimmable
    ctx.run_ssta();
    const auto trimmed = ctx.engine().memory_stats();
    EXPECT_LT(trimmed.wave_capacity_doubles, grown.wave_capacity_doubles);
    // Correctness is untouched by the trim.
    const std::vector<prob::Pdf> ref = reference_arrivals(ctx);
    expect_arrivals_equal(ctx, ref, "after shrink");
}

}  // namespace
}  // namespace statim
