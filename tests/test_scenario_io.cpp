// Scenario-set format properties (api/scenario_io.hpp): a write → read
// round trip must reproduce every field bit for bit (the dispatch wire
// protocol embeds scenario blocks and relies on this for its determinism
// contract), defaults must match a default-constructed Scenario, and
// malformed input must fail with located ParseErrors.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "api/statim.hpp"
#include "util/error.hpp"

namespace statim::api {
namespace {

void expect_scenarios_equal(const Scenario& a, const Scenario& b,
                            const std::string& label) {
    EXPECT_EQ(a.name, b.name) << label;
    EXPECT_EQ(a.objective, b.objective) << label;
    EXPECT_EQ(a.percentile, b.percentile) << label;
    EXPECT_EQ(a.grid_bins, b.grid_bins) << label;
    EXPECT_EQ(a.selector, b.selector) << label;
    EXPECT_EQ(a.delta_w, b.delta_w) << label;
    EXPECT_EQ(a.max_width, b.max_width) << label;
    EXPECT_EQ(a.max_iterations, b.max_iterations) << label;
    EXPECT_EQ(a.area_budget, b.area_budget) << label;
    EXPECT_EQ(a.target_objective_ns, b.target_objective_ns) << label;
    EXPECT_EQ(a.gates_per_iteration, b.gates_per_iteration) << label;
    EXPECT_EQ(a.threads, b.threads) << label;
    EXPECT_EQ(a.incremental_ssta, b.incremental_ssta) << label;
    EXPECT_EQ(a.simd, b.simd) << label;
    EXPECT_EQ(a.crit_floor, b.crit_floor) << label;
    EXPECT_EQ(a.selector_cache, b.selector_cache) << label;
    EXPECT_EQ(a.mc_samples, b.mc_samples) << label;
    EXPECT_EQ(a.seed, b.seed) << label;
}

TEST(ScenarioIo, RoundTripIsBitExact) {
    std::vector<Scenario> set(3);
    set[0].name = "p99 with spaces";  // single spaces round-trip
    set[0].percentile = 0.99;
    set[0].delta_w = 0.1;  // not exactly representable in binary
    set[0].max_iterations = 17;
    set[0].mc_samples = 12345;
    set[1].name = "mean-obj";
    set[1].objective = Scenario::Objective::Mean;
    set[1].area_budget = 1.0 / 3.0;
    set[1].target_objective_ns = 2.7182818284590452;
    set[1].gates_per_iteration = 4;
    set[1].seed = 0xfeedface;
    set[2].name = "selector-variant";
    set[2].selector = Scenario::parse_selector("cone");
    set[2].crit_floor = 0.05;
    set[2].selector_cache = false;
    set[2].incremental_ssta = false;
    set[2].threads = 3;
    set[2].grid_bins = 256;

    std::ostringstream first;
    write_scenario_set(first, set);
    std::istringstream in(first.str());
    const std::vector<Scenario> parsed = read_scenario_set(in);
    ASSERT_EQ(parsed.size(), set.size());
    for (std::size_t i = 0; i < set.size(); ++i)
        expect_scenarios_equal(set[i], parsed[i], "scenario " + std::to_string(i));

    // Fixed point: writing the parsed set reproduces the bytes.
    std::ostringstream second;
    write_scenario_set(second, parsed);
    EXPECT_EQ(first.str(), second.str());
}

TEST(ScenarioIo, InfiniteAreaBudgetRoundTrips) {
    Scenario s;
    s.name = "unbounded";
    s.area_budget = std::numeric_limits<double>::infinity();
    std::ostringstream out;
    write_scenario(out, s);
    std::istringstream in(out.str());
    const std::vector<Scenario> parsed = read_scenario_set(in);
    ASSERT_EQ(parsed.size(), 1u);
    EXPECT_TRUE(std::isinf(parsed[0].area_budget));
    EXPECT_GT(parsed[0].area_budget, 0.0);
}

TEST(ScenarioIo, MinimalBlockYieldsDefaults) {
    std::istringstream in("# a comment\nscenario bare\nend\n");
    const std::vector<Scenario> parsed = read_scenario_set(in);
    ASSERT_EQ(parsed.size(), 1u);
    Scenario defaults;
    defaults.name = "bare";
    expect_scenarios_equal(defaults, parsed[0], "defaults");
}

TEST(ScenarioIo, ParseErrorsAreLocated) {
    const auto expect_throw = [](const std::string& text, const char* needle) {
        std::istringstream in(text);
        try {
            (void)read_scenario_set(in);
            FAIL() << "expected ParseError for: " << text;
        } catch (const ParseError& e) {
            EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
                << e.what();
        }
    };
    expect_throw("", "no scenario blocks");
    expect_throw("scenario a\nfrobnicate 3\nend\n", "unknown scenario key");
    expect_throw("scenario a\nmax_iterations 5\n", "missing its 'end'");
    expect_throw("scenario a\ndelta_w banana\nend\n", "malformed number");
    expect_throw("scenario\nend\n", "needs a name");
    expect_throw("bogus-line\n", "expected 'scenario <name>'");
    expect_throw("scenario a\nobjective median\nend\n", "unknown objective");
}

TEST(ScenarioIo, InvalidScenarioValuesAreRejected) {
    // Structurally valid but semantically invalid: Scenario::validate()
    // must reject it during parsing, not at run time.
    std::istringstream in("scenario bad\npercentile 1.5\nend\n");
    EXPECT_THROW((void)read_scenario_set(in), Error);
}

TEST(ScenarioIo, WriterRejectsNonRoundTrippableNames) {
    Scenario s;
    s.name = "two  spaces";  // tokenizer would collapse them
    std::ostringstream out;
    EXPECT_THROW(write_scenario(out, s), ConfigError);
    s.name = "hash#mark";  // '#' starts a comment in the format
    EXPECT_THROW(write_scenario(out, s), ConfigError);
}

}  // namespace
}  // namespace statim::api
