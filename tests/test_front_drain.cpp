// Property tests for the flat, wave-parallel perturbation-front drain.
//
// The rewritten drain (front_state.hpp: pooled flat entries, dense
// epoch-stamped workspace slots, per-level wave sharding) must be
// observationally identical to the serial map-and-heap reference it
// replaced. The pinned properties, across thread counts {1, 2, 7} and
// circuits {c432, c7552, synth10k}:
//  * final sensitivity and sink CDF equal the brute-force full-SSTA
//    sensitivity (the paper's exactness claim, end to end);
//  * the bound trajectory (Smx after every level step), the stats and
//    the recorded footprints are identical for every thread count;
//  * steady-state drains perform (almost) no heap allocation once the
//    state pool and workspaces are warm.
#include <gtest/gtest.h>

#include <vector>

#include "core/front.hpp"
#include "core/selector.hpp"
#include "core/trial_resize.hpp"
#include "netlist/iscas.hpp"
#include "ssta/criticality.hpp"
#include "util/alloc_stats.hpp"
#include "util/thread_pool.hpp"

namespace statim::core {
namespace {

using netlist::TimingGraph;

/// Everything one drained front exposes, for cross-thread comparison.
struct DrainTrace {
    double sensitivity{0.0};
    std::vector<double> bounds;  // after construction + each level step
    std::size_t nodes_computed{0};
    std::size_t levels_stepped{0};
    std::size_t dead_drops{0};
    bool reached_sink{false};
    prob::Pdf sink;
    std::vector<NodeId> computed, changed;
};

DrainTrace drain_gate(Context& ctx, GateId g, double delta_w) {
    const Objective obj = Objective::percentile(0.99);
    TrialResize trial(ctx, g, delta_w);
    PerturbationFront front(ctx, obj, trial, /*record_footprint=*/true);
    DrainTrace trace;
    while (!front.completed()) {
        trace.bounds.push_back(front.bound_sensitivity());
        front.propagate_one_level(ctx);
    }
    trace.sensitivity = front.sensitivity();
    trace.nodes_computed = front.stats().nodes_computed;
    trace.levels_stepped = front.stats().levels_stepped;
    trace.dead_drops = front.stats().dead_drops;
    trace.reached_sink = front.sink_pdf().valid();
    if (trace.reached_sink) trace.sink = front.sink_pdf().to_pdf();
    trace.computed = front.computed_nodes();
    trace.changed = front.changed_nodes();
    return trace;
}

class FlatDrain : public ::testing::TestWithParam<const char*> {};

TEST_P(FlatDrain, TraceIdenticalAcrossThreadCounts) {
    const cells::Library lib = cells::Library::standard_180nm();
    netlist::Netlist nl = netlist::make_iscas(GetParam(), lib);
    core::Context ctx(nl, lib);
    ctx.run_ssta();
    // The shared deterministic sample keeps this population identical to
    // the one bench_front_drain measures.
    const std::vector<GateId> gates = sample_candidate_gates(ctx, 16);

    std::vector<DrainTrace> reference;
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{7}}) {
        ctx.set_ssta_threads(threads);
        for (std::size_t i = 0; i < gates.size(); ++i) {
            DrainTrace trace = drain_gate(ctx, gates[i], 0.25);
            if (threads == 1) {
                reference.push_back(std::move(trace));
                continue;
            }
            const DrainTrace& ref = reference[i];
            ASSERT_EQ(trace.sensitivity, ref.sensitivity)
                << GetParam() << " gate " << gates[i].value << " t" << threads;
            ASSERT_EQ(trace.bounds, ref.bounds)
                << GetParam() << " gate " << gates[i].value << " t" << threads;
            ASSERT_EQ(trace.nodes_computed, ref.nodes_computed);
            ASSERT_EQ(trace.levels_stepped, ref.levels_stepped);
            ASSERT_EQ(trace.dead_drops, ref.dead_drops);
            ASSERT_EQ(trace.reached_sink, ref.reached_sink);
            ASSERT_TRUE(trace.sink == ref.sink);
            ASSERT_EQ(trace.computed, ref.computed);
            ASSERT_EQ(trace.changed, ref.changed);
        }
    }
    ctx.set_ssta_threads(1);
}

INSTANTIATE_TEST_SUITE_P(Circuits, FlatDrain,
                         ::testing::Values("c432", "c7552", "synth10k"));

TEST(FlatDrainExactness, SensitivityMatchesBruteForceOnC432) {
    // End-to-end pin against the paper baseline: the pruned front's
    // sensitivities (cone drains) must equal the full-SSTA brute force
    // per gate. select_brute_force(record_all) computes both sides with
    // one Selection each.
    const cells::Library lib = cells::Library::standard_180nm();
    netlist::Netlist nl = netlist::make_iscas("c432", lib);
    core::Context ctx(nl, lib);
    ctx.run_ssta();
    const SelectorConfig cfg{Objective::percentile(0.99), 0.25, 16.0};

    Selection cone = select_brute_force(ctx, cfg, /*cone_only=*/true, true);
    Selection full = select_brute_force(ctx, cfg, /*cone_only=*/false, true);
    ASSERT_EQ(cone.all_sensitivities.size(), full.all_sensitivities.size());
    for (std::size_t i = 0; i < cone.all_sensitivities.size(); ++i) {
        EXPECT_EQ(cone.all_sensitivities[i].first, full.all_sensitivities[i].first);
        EXPECT_DOUBLE_EQ(cone.all_sensitivities[i].second,
                         full.all_sensitivities[i].second)
            << "gate " << cone.all_sensitivities[i].first.value;
    }
    EXPECT_EQ(cone.gate, full.gate);
}

TEST(FlatDrainSteadyState, WarmDrainIsNearlyAllocationFree) {
    const cells::Library lib = cells::Library::standard_180nm();
    netlist::Netlist nl = netlist::make_iscas("c432", lib);
    core::Context ctx(nl, lib);
    ctx.run_ssta();
    const Objective obj = Objective::percentile(0.99);
    // A shallow critical gate: the drain crosses many levels after
    // construction, so the measured loop actually exercises the machinery.
    const auto crit = ssta::compute_criticality(ctx.engine(), ctx.edge_delays());
    const auto ranked = ssta::rank_gates_by_criticality(ctx.graph(), crit);
    GateId g = ranked.front().first;
    for (std::size_t i = 1; i < std::min<std::size_t>(ranked.size(), 8); ++i)
        if (ctx.graph().gate_level(ranked[i].first) < ctx.graph().gate_level(g))
            g = ranked[i].first;

    // Warm-up: grows the pooled front state, the thread workspace, the
    // shard arenas and the thread scratch arena to this circuit's needs.
    for (int i = 0; i < 2; ++i) {
        TrialResize trial(ctx, g, 0.25);
        PerturbationFront front(ctx, obj, trial);
        while (!front.completed()) front.propagate_one_level(ctx);
    }

    // Steady state: the drain loop itself must not touch the heap (the
    // small slack absorbs harness noise, not drain allocations).
    TrialResize trial(ctx, g, 0.25);
    PerturbationFront front(ctx, obj, trial);
    std::size_t levels = 0;
    const util::AllocationSpan span;
    while (!front.completed()) {
        front.propagate_one_level(ctx);
        ++levels;
    }
    EXPECT_GT(levels, 2u);
    EXPECT_LE(span.count(), 4u) << "steady-state drain allocated";
    EXPECT_GT(front.sensitivity(), 0.0);
}

TEST(FlatDrainSteadyState, WarmSelectorPassIsNearlyAllocationFree) {
    // The PR-5 satellite: with trial-resize buffers, front states and the
    // pass containers pooled, a whole warm select_pruned pass over every
    // eligible gate allocates a flat constant — not per candidate
    // (previously ~30-50 allocations each).
    const cells::Library lib = cells::Library::standard_180nm();
    netlist::Netlist nl = netlist::make_iscas("c432", lib);
    core::Context ctx(nl, lib);
    ctx.run_ssta();
    const SelectorConfig cfg{Objective::percentile(0.99), 0.25, 16.0};

    // Warm-up passes grow every pool to the circuit's footprint.
    (void)select_pruned(ctx, cfg);
    (void)select_pruned(ctx, cfg);

    const util::AllocationSpan span;
    const Selection sel = select_pruned(ctx, cfg);
    EXPECT_GT(sel.stats.candidates, 100u);  // every eligible gate raced
    EXPECT_LE(span.count(), 64u) << "steady-state selector pass allocated";
    EXPECT_TRUE(sel.gate.is_valid());
}

TEST(TrialResizeBuffers, NestedTrialsFallBackSafely) {
    // Nested trials on one thread must not share the pooled buffer set;
    // both restore bit-for-bit on destruction.
    const cells::Library lib = cells::Library::standard_180nm();
    netlist::Netlist nl = netlist::make_iscas("c17", lib);
    core::Context ctx(nl, lib);
    ctx.run_ssta();
    const auto before = ctx.edge_delays().snapshot(
        ctx.delay_calc().affected_edges(GateId{2}));
    {
        TrialResize outer(ctx, GateId{2}, 0.25);
        TrialResize inner(ctx, GateId{4}, 0.25);
        EXPECT_FALSE(outer.changed_edges().empty());
        EXPECT_FALSE(inner.changed_edges().empty());
        EXPECT_NE(&outer.changed_edges(), &inner.changed_edges());
    }
    const auto after = ctx.edge_delays().snapshot(
        ctx.delay_calc().affected_edges(GateId{2}));
    ASSERT_EQ(before.size(), after.size());
    for (std::size_t i = 0; i < before.size(); ++i)
        EXPECT_TRUE(before[i] == after[i]) << i;
}

TEST(FrontStatePool, StatesAreRecycled) {
    FrontState* a = acquire_front_state();
    a->entries.push_back(FrontEntry{});
    a->pending.push_back(0);
    release_front_state(a);
    FrontState* b = acquire_front_state();
    EXPECT_EQ(a, b);  // LIFO pool hands the same object back...
    EXPECT_TRUE(b->entries.empty());  // ...reset for reuse
    EXPECT_TRUE(b->pending.empty());
    EXPECT_EQ(b->min_pending_level, FrontState::kNoLevel);
    release_front_state(b);
}

}  // namespace
}  // namespace statim::core
