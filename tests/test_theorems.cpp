// Property tests for the paper's perturbation-bound theory (Section 3.2).
//
// Theorem 1 — convolution preserves a pure shift: if a'(t) = a(t + Δ) then
//   conv(a', d) is conv(a, d) shifted by Δ, so Δ is unchanged.
// Theorem 2/3 — the independence max cannot amplify the perturbation:
//   Δ(max(A1,A2), max(A'1,A'2)) <= max(Δ1, Δ2), including the single-
//   perturbed-input special case (Δ2 = 0).
// Lower-bound construction (Definition 2) — the theorems extend to
//   arbitrary-shape perturbations via the shifted-copy lower bound; we test
//   the consequence directly on random PDFs.
// Theorem 4 — over a whole propagation front the bound is monotonically
//   non-increasing and always dominates the final sink sensitivity; tested
//   here on random DAG-shaped operator trees and end-to-end on circuits in
//   test_front.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "prob/gaussian.hpp"
#include "prob/ops.hpp"
#include "util/rng.hpp"

namespace statim::prob {
namespace {

Pdf random_pdf(Rng& rng, int max_len = 20) {
    const auto len = static_cast<std::size_t>(rng.uniform_int(1, max_len));
    std::vector<double> mass(len);
    for (double& m : mass) m = rng.uniform(0.01, 1.0);
    return Pdf::from_mass(rng.uniform_int(-30, 30), std::move(mass));
}

/// A random "perturbed version" of `a`: shifted and/or reshaped the way a
/// resized gate reshapes an arrival (tighter or wider truncated Gaussian,
/// partial max-absorption, ...). Returns a PDF comparable to `a`.
Pdf random_perturbation(Rng& rng, const Pdf& a) {
    switch (rng.uniform_int(0, 3)) {
        case 0: {  // pure shift
            Pdf b = a;
            b.shift(rng.uniform_int(-6, 6));
            return b;
        }
        case 1: {  // reshaped: convolve with a small random kernel
            return convolve(a, random_pdf(rng, 4));
        }
        case 2: {  // partially absorbed by an unrelated max
            return stat_max(a, random_pdf(rng, 8));
        }
        default: {  // unrelated distribution
            return random_pdf(rng);
        }
    }
}

class TheoremSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TheoremSweep, Theorem1ConvolutionPreservesShift) {
    Rng rng(GetParam());
    for (int trial = 0; trial < 25; ++trial) {
        const Pdf a = random_pdf(rng);
        const std::int64_t shift = rng.uniform_int(-8, 8);
        Pdf a_pert = a;
        a_pert.shift(-shift);  // perturbed arrives `shift` bins earlier
        const Pdf d = random_pdf(rng, 8);

        const Pdf out = convolve(a, d);
        const Pdf out_pert = convolve(a_pert, d);
        EXPECT_NEAR(max_percentile_shift(out, out_pert),
                    static_cast<double>(shift), 1e-9);
    }
}

TEST_P(TheoremSweep, Theorem2MaxWithTwoPerturbedInputs) {
    Rng rng(GetParam() ^ 0x9E37ULL);
    for (int trial = 0; trial < 25; ++trial) {
        const Pdf a1 = random_pdf(rng);
        const Pdf a2 = random_pdf(rng);
        const Pdf a1p = random_perturbation(rng, a1);
        const Pdf a2p = random_perturbation(rng, a2);

        const double d1 = max_percentile_shift(a1, a1p);
        const double d2 = max_percentile_shift(a2, a2p);
        const double dout =
            max_percentile_shift(stat_max(a1, a2), stat_max(a1p, a2p));
        EXPECT_LE(dout, std::max(d1, d2) + 1e-9)
            << "trial " << trial << ": Δout must not exceed max(Δ1, Δ2)";
    }
}

TEST_P(TheoremSweep, Theorem3MaxWithSinglePerturbedInput) {
    Rng rng(GetParam() ^ 0xABCDULL);
    for (int trial = 0; trial < 25; ++trial) {
        const Pdf a1 = random_pdf(rng);
        const Pdf a2 = random_pdf(rng);
        const Pdf a1p = random_perturbation(rng, a1);

        const double d1 = max_percentile_shift(a1, a1p);
        const double dout =
            max_percentile_shift(stat_max(a1, a2), stat_max(a1p, a2));
        // Δ2 = 0, so the bound degenerates to max(Δ1, 0).
        EXPECT_LE(dout, std::max(d1, 0.0) + 1e-9);
    }
}

TEST_P(TheoremSweep, ShiftCaseIsTightWhenBothInputsShiftEqually) {
    // Theorem 2 case 1: Δ1 = Δ2 = Δ implies Δout = Δ exactly.
    Rng rng(GetParam() ^ 0x5555ULL);
    for (int trial = 0; trial < 25; ++trial) {
        const Pdf a1 = random_pdf(rng);
        const Pdf a2 = random_pdf(rng);
        const std::int64_t shift = rng.uniform_int(0, 8);
        Pdf a1p = a1;
        Pdf a2p = a2;
        a1p.shift(-shift);
        a2p.shift(-shift);
        const double dout =
            max_percentile_shift(stat_max(a1, a2), stat_max(a1p, a2p));
        EXPECT_NEAR(dout, static_cast<double>(shift), 1e-9);
    }
}

TEST_P(TheoremSweep, BoundSurvivesOperatorChains) {
    // Theorem 4 in miniature: pushing a perturbation through a random
    // chain of convolutions and maxes. The production bound is the step-Δ
    // clamped at zero plus one bin of slack; the *interpolated* Δ (what
    // the objective reads) must stay below it at every step. The clamp
    // matters for worsening perturbations (absorbed back to Δ = 0 by a max
    // with an unperturbed side, Theorem 3's implicit Δ = 0 input); the
    // slack covers the step-vs-interpolated gap.
    Rng rng(GetParam() ^ 0x7777ULL);
    for (int trial = 0; trial < 10; ++trial) {
        Pdf base = random_pdf(rng);
        Pdf pert = random_perturbation(rng, base);
        auto bound = std::max<std::int64_t>(max_percentile_shift_bins(base, pert), 0);

        for (int step = 0; step < 8; ++step) {
            if (rng.uniform() < 0.5) {
                const Pdf d = random_pdf(rng, 6);
                base = convolve(base, d);
                pert = convolve(pert, d);
            } else {
                const Pdf side = random_pdf(rng);
                base = stat_max(base, side);
                pert = stat_max(pert, side);
            }
            const double interp_delta = max_percentile_shift(base, pert);
            // +1 bin interpolation gap, +1 bin FP knot-tie slack — the
            // same two bins the production bound carries.
            EXPECT_LE(interp_delta, static_cast<double>(bound) + 2.0) << "step " << step;
            bound = std::min(
                bound, std::max<std::int64_t>(max_percentile_shift_bins(base, pert), 0));
        }
    }
}

TEST_P(TheoremSweep, LowerBoundConstructionDominatesPerturbedCdf) {
    // Definition 2: B' = A shifted by Δ satisfies T(B',p) <= T(A',p) for
    // all p — B' is a true lower bound of the perturbed CDF.
    Rng rng(GetParam() ^ 0x1234ULL);
    for (int trial = 0; trial < 25; ++trial) {
        const Pdf a = random_pdf(rng);
        const Pdf ap = random_perturbation(rng, a);
        const double delta = max_percentile_shift(a, ap);
        for (double p : {0.05, 0.25, 0.5, 0.75, 0.95, 1.0})
            EXPECT_LE(a.percentile_bin(p) - delta, ap.percentile_bin(p) + 1e-9);
    }
}

TEST_P(TheoremSweep, PercentileObjectiveIsBoundedByDelta) {
    // The pruning criterion: δ(p*) <= Δ for the objective percentile p*,
    // and the same for the mean objective.
    Rng rng(GetParam() ^ 0xFEDCULL);
    for (int trial = 0; trial < 25; ++trial) {
        const Pdf a = random_pdf(rng);
        const Pdf ap = random_perturbation(rng, a);
        const double delta = max_percentile_shift(a, ap);
        EXPECT_LE(a.percentile_bin(0.99) - ap.percentile_bin(0.99), delta + 1e-9);
        EXPECT_LE(a.mean_bins() - ap.mean_bins(), delta + 1e-9);
    }
}

TEST_P(TheoremSweep, StepBoundMonotoneThroughChainsUpToFpTies) {
    // The step-CDF Δ, clamped at 0, through arbitrary conv/max chains:
    // monotone in exact arithmetic; floating-point knot ties between the
    // structurally related CDFs may flip it by one bin per step (the
    // production bound carries that bin as explicit slack).
    Rng rng(GetParam() ^ 0x2468ULL);
    for (int trial = 0; trial < 10; ++trial) {
        Pdf base = random_pdf(rng);
        Pdf pert = random_perturbation(rng, base);
        std::int64_t bound = std::max<std::int64_t>(
            max_percentile_shift_bins(base, pert), 0);
        for (int step = 0; step < 8; ++step) {
            if (rng.uniform() < 0.5) {
                const Pdf d = random_pdf(rng, 6);
                base = convolve(base, d);
                pert = convolve(pert, d);
            } else {
                const Pdf side = random_pdf(rng);
                base = stat_max(base, side);
                pert = stat_max(pert, side);
            }
            const std::int64_t delta = max_percentile_shift_bins(base, pert);
            EXPECT_LE(delta, bound + 1) << "step " << step;
            bound = std::min(bound, std::max<std::int64_t>(delta, 0));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TheoremSweep,
                         ::testing::Values(1ULL, 2ULL, 3ULL, 5ULL, 8ULL, 13ULL,
                                           21ULL, 34ULL, 55ULL, 89ULL));

TEST(TheoremEdgeCases, DeadPerturbationHasZeroDelta) {
    // A perturbation fully absorbed by a dominating max: Δ becomes 0.
    const Pdf a = Pdf::from_mass(0, {0.5, 0.5});
    Pdf ap = a;
    ap.shift(-3);
    const Pdf big = Pdf::from_mass(50, {1.0});
    EXPECT_EQ(stat_max(a, big), stat_max(ap, big));
    EXPECT_NEAR(max_percentile_shift(stat_max(a, big), stat_max(ap, big)), 0.0, 1e-12);
}

TEST(TheoremEdgeCases, WorseningPerturbationHasNegativeDelta) {
    const Pdf a = Pdf::from_mass(0, {0.5, 0.5});
    Pdf worse = a;
    worse.shift(4);  // perturbed is later everywhere
    EXPECT_NEAR(max_percentile_shift(a, worse), -4.0, 1e-12);
}

TEST(TheoremEdgeCases, GaussianEdgesBehaveLikeAnalyticShift) {
    // Resizing in the logic-effort model mostly shifts the edge Gaussian;
    // check Δ through conv matches the nominal-delay difference.
    const TimeGrid grid(0.001);
    const Pdf arrival = truncated_gaussian(grid, 1.0, 0.1, 3.0);
    const Pdf d_slow = truncated_gaussian(grid, 0.30, 0.03, 3.0);
    const Pdf d_fast = truncated_gaussian(grid, 0.24, 0.024, 3.0);
    const double delta =
        max_percentile_shift(convolve(arrival, d_slow), convolve(arrival, d_fast));
    // The improvement is at least the mean shift and at most mean shift
    // plus the 3σ spread difference.
    EXPECT_GE(delta, (0.30 - 0.24) / grid.dt_ns() - 1.0);
    EXPECT_LE(delta, (0.30 - 0.24 + 3 * (0.03 - 0.024)) / grid.dt_ns() + 1.0);
}

}  // namespace
}  // namespace statim::prob
