// Unit tests for the Table 1 / Table 2 experiment drivers.
#include <gtest/gtest.h>

#include "core/flow.hpp"
#include "netlist/iscas.hpp"

namespace statim::core {
namespace {

TEST(CompareOptimizers, ProducesConsistentTable1Row) {
    cells::Library lib = cells::Library::standard_180nm();
    ComparisonConfig cfg;
    cfg.det_iterations = 40;
    const ComparisonResult row = compare_optimizers("c432", lib, cfg);

    EXPECT_EQ(row.circuit, "c432");
    EXPECT_EQ(row.nodes, 214u);
    EXPECT_EQ(row.edges, 379u);

    // Both optimizers must beat the min-size circuit.
    EXPECT_LT(row.det_objective_ns, row.initial_objective_ns);
    EXPECT_LT(row.stat_objective_ns, row.initial_objective_ns);

    // Area parity: the statistical run stops at the deterministic budget
    // (within one sizing step of the largest cell).
    EXPECT_NEAR(row.stat_area_increase_pct, row.det_area_increase_pct,
                100.0 * 0.25 * 4.0 / row.det.initial_area + 1e-9);

    // Improvement definition consistency.
    EXPECT_NEAR(row.improvement_pct,
                100.0 * (row.det_objective_ns - row.stat_objective_ns) /
                    row.det_objective_ns,
                1e-9);

    // Full histories are exposed for the figure harnesses.
    EXPECT_EQ(static_cast<int>(row.det.history.size()), row.det.iterations);
    EXPECT_EQ(static_cast<int>(row.stat.history.size()), row.stat.iterations);
}

TEST(CompareOptimizers, StatisticalWinsWithEnoughIterations) {
    // The headline qualitative claim of Table 1: at matched area the
    // statistical optimizer achieves a lower 99-percentile delay.
    cells::Library lib = cells::Library::standard_180nm();
    ComparisonConfig cfg;
    cfg.det_iterations = 150;
    const ComparisonResult row = compare_optimizers("c432", lib, cfg);
    EXPECT_GT(row.improvement_pct, 0.0);
}

TEST(CompareRuntime, PrunedBeatsBruteAndStaysExact) {
    cells::Library lib = cells::Library::standard_180nm();
    RuntimeComparisonConfig cfg;
    cfg.iterations = 3;
    cfg.verify_equal = true;  // throws on any divergence
    const RuntimeComparisonResult result = compare_runtime("c432", lib, cfg);

    EXPECT_EQ(result.per_iteration.size(), 3u);
    EXPECT_EQ(result.brute_seconds.count(), 3u);
    EXPECT_GT(result.brute_seconds.mean(), 0.0);
    EXPECT_GT(result.pruned_seconds.mean(), 0.0);
    // Pruning must win on average on a 200-node circuit.
    EXPECT_GT(result.improvement_factor.mean(), 1.0);
    // The paper reports ~55/56 candidates pruned; ours is similarly high.
    EXPECT_GT(result.pruned_fraction.mean(), 0.5);
}

TEST(CompareRuntime, ConeTimingOptional) {
    cells::Library lib = cells::Library::standard_180nm();
    RuntimeComparisonConfig cfg;
    cfg.iterations = 2;
    cfg.time_cone = true;
    const RuntimeComparisonResult result = compare_runtime("c17", lib, cfg);
    for (const auto& timing : result.per_iteration)
        EXPECT_GT(timing.cone_seconds, 0.0);
}

TEST(CompareRuntime, UnknownCircuitThrows) {
    cells::Library lib = cells::Library::standard_180nm();
    RuntimeComparisonConfig cfg;
    EXPECT_THROW((void)compare_runtime("c9999", lib, cfg), ConfigError);
}

}  // namespace
}  // namespace statim::core
