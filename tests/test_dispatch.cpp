// Dispatch determinism properties (api/dispatch.hpp contract): the
// report a multi-process dispatch aggregates — and its JSON rendering —
// must be bitwise identical to the in-process api::run_scenarios
// reference, invariant to worker count AND to SIGKILL/hang-induced
// checkpoint migration (randomized kill points). Plus protocol-level
// units: frame parsing byte-at-a-time, oversized-payload rejection, and
// the worker's library-fingerprint refusal.
//
// The process-spawning tests exec the real `statim serve` binary
// (STATIM_SERVE_BIN, wired by CMake when the CLI is built) and skip when
// it is unavailable.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "api/detail.hpp"
#include "api/statim.hpp"
#include "core/context.hpp"
#include "dist/protocol.hpp"
#include "dist/transport.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace statim::api {
namespace {

const char* serve_bin() {
#ifdef STATIM_SERVE_BIN
    return STATIM_SERVE_BIN;
#else
    return nullptr;
#endif
}

#define REQUIRE_SERVE_BIN()                                       \
    do {                                                          \
        if (serve_bin() == nullptr)                               \
            GTEST_SKIP() << "statim CLI not built; no serve binary"; \
    } while (0)

DispatchOptions base_options() {
    DispatchOptions options;
    options.serve_command = {serve_bin(), "serve"};
    options.checkpoint_every = 1;
    options.heartbeat_timeout_ms = 60000;
    options.retries = 2;
    return options;
}

/// Three heterogenous scenarios on one design: different budgets and
/// batches (exercises LPT ordering), one with MC validation (exercises
/// the digest path and the RNG-carrying checkpoint contract).
std::vector<Scenario> make_scenarios() {
    std::vector<Scenario> scenarios(3);
    scenarios[0].name = "k1-short";
    scenarios[0].max_iterations = 5;
    scenarios[0].seed = 7;
    scenarios[1].name = "k2-long";
    scenarios[1].max_iterations = 8;
    scenarios[1].gates_per_iteration = 2;
    scenarios[1].seed = 7;
    scenarios[2].name = "k1-mc";
    scenarios[2].max_iterations = 6;
    scenarios[2].mc_samples = 500;
    scenarios[2].seed = 11;
    return scenarios;
}

std::string json_of(const DispatchReport& report) {
    std::ostringstream out;
    write_dispatch_json(out, report);
    return out.str();
}

/// Fresh design with the outcome's widths installed, for arrival
/// comparison (the same reconstruction checkpoint resume relies on).
Design design_with_widths(const DispatchReport& report,
                          const std::vector<double>& widths) {
    Design design = Design::from_registry(report.design);
    EXPECT_EQ(design.gate_count(), widths.size());
    for (std::size_t g = 0; g < widths.size(); ++g)
        design.netlist().gate(GateId(static_cast<std::uint32_t>(g))).width =
            widths[g];
    return design;
}

void expect_arrivals_equal(Design& a, Design& b, const std::string& label) {
    core::Context ctx_a(a.netlist(), a.library());
    core::Context ctx_b(b.netlist(), b.library());
    ctx_a.run_ssta();
    ctx_b.run_ssta();
    ASSERT_EQ(ctx_a.graph().node_count(), ctx_b.graph().node_count()) << label;
    for (std::size_t n = 0; n < ctx_a.graph().node_count(); ++n) {
        const NodeId node{static_cast<std::uint32_t>(n)};
        ASSERT_TRUE(ctx_a.engine().arrival(node) == ctx_b.engine().arrival(node))
            << label << " node " << n;
    }
}

/// The acceptance property: byte-identical JSON, and per scenario
/// bitwise-equal widths, full history, and post-sizing arrivals.
void expect_reports_identical(const DispatchReport& ref,
                              const DispatchReport& got,
                              const std::string& label) {
    EXPECT_EQ(json_of(ref), json_of(got)) << label;
    ASSERT_EQ(ref.outcomes.size(), got.outcomes.size()) << label;
    for (std::size_t i = 0; i < ref.outcomes.size(); ++i) {
        const DispatchOutcome& a = ref.outcomes[i];
        const DispatchOutcome& b = got.outcomes[i];
        const std::string tag = label + " scenario " + std::to_string(i);
        ASSERT_EQ(a.ok, b.ok) << tag;
        if (!a.ok) continue;
        EXPECT_EQ(a.widths, b.widths) << tag;
        ASSERT_EQ(a.sizing.history.size(), b.sizing.history.size()) << tag;
        for (std::size_t k = 0; k < a.sizing.history.size(); ++k) {
            EXPECT_EQ(a.sizing.history[k].gate, b.sizing.history[k].gate) << tag;
            EXPECT_EQ(a.sizing.history[k].objective_after_ns,
                      b.sizing.history[k].objective_after_ns)
                << tag << " record " << k;
            EXPECT_EQ(a.sizing.history[k].width_after,
                      b.sizing.history[k].width_after)
                << tag << " record " << k;
        }
        EXPECT_EQ(a.mc.samples, b.mc.samples) << tag;
        EXPECT_EQ(a.mc.mean_ns, b.mc.mean_ns) << tag;
        EXPECT_EQ(a.mc.p99_ns, b.mc.p99_ns) << tag;
        Design da = design_with_widths(ref, a.widths);
        Design db = design_with_widths(got, b.widths);
        expect_arrivals_equal(da, db, tag);
    }
}

TEST(Dispatch, MatchesInProcessAcrossWorkerCounts) {
    REQUIRE_SERVE_BIN();
    const DesignSource source;  // registry c432
    const std::vector<Scenario> scenarios = make_scenarios();
    const DispatchReport ref = run_scenarios_report(source, scenarios);
    ASSERT_TRUE(ref.complete);

    for (const int workers : {1, 3}) {
        DispatchOptions options = base_options();
        options.workers = workers;
        options.checkpoint_every = 2;
        const DispatchReport got = dispatch_scenarios(source, scenarios, options);
        EXPECT_TRUE(got.complete);
        expect_reports_identical(ref, got,
                                 "workers=" + std::to_string(workers));
        for (const DispatchOutcome& o : got.outcomes) {
            EXPECT_EQ(o.attempts, 0);
            EXPECT_EQ(o.migrations, 0);
        }
    }
}

TEST(Dispatch, SigkillMigrationBitwise) {
    REQUIRE_SERVE_BIN();
    const DesignSource source;
    const std::vector<Scenario> scenarios = make_scenarios();
    const DispatchReport ref = run_scenarios_report(source, scenarios);

    // Randomized (but seeded) kill points: any victim scenario, any
    // iteration within its budget, both checkpoint cadences.
    Rng rng(20260808);
    for (int trial = 0; trial < 3; ++trial) {
        DispatchOptions options = base_options();
        options.workers = 2;
        options.checkpoint_every = static_cast<int>(rng.uniform_int(1, 2));
        options.fault.kind = FaultInjection::Kind::Kill;
        options.fault.scenario = static_cast<int>(
            rng.uniform_int(0, static_cast<std::int64_t>(scenarios.size()) - 1));
        options.fault.after_iteration = static_cast<int>(rng.uniform_int(1, 4));
        const std::string label =
            "trial=" + std::to_string(trial) +
            " victim=" + std::to_string(options.fault.scenario) +
            " after=" + std::to_string(options.fault.after_iteration) +
            " ckpt_every=" + std::to_string(options.checkpoint_every);

        const DispatchReport got = dispatch_scenarios(source, scenarios, options);
        EXPECT_TRUE(got.complete) << label;
        expect_reports_identical(ref, got, label);
        EXPECT_EQ(got.outcomes[options.fault.scenario].attempts, 1) << label;
    }
}

TEST(Dispatch, HangDetectionAndMigrationBitwise) {
    REQUIRE_SERVE_BIN();
    const DesignSource source;
    const std::vector<Scenario> scenarios = make_scenarios();
    const DispatchReport ref = run_scenarios_report(source, scenarios);

    DispatchOptions options = base_options();
    options.workers = 2;
    options.heartbeat_timeout_ms = 300;
    options.fault.kind = FaultInjection::Kind::Hang;
    options.fault.scenario = 1;
    options.fault.after_iteration = 2;
    const DispatchReport got = dispatch_scenarios(source, scenarios, options);
    EXPECT_TRUE(got.complete);
    expect_reports_identical(ref, got, "hang");
    EXPECT_EQ(got.outcomes[1].attempts, 1);
    EXPECT_EQ(got.outcomes[1].migrations, 1);
}

TEST(Dispatch, RetryBudgetExhaustionFailsLoudly) {
    REQUIRE_SERVE_BIN();
    const DesignSource source;
    const std::vector<Scenario> scenarios = make_scenarios();

    DispatchOptions options = base_options();
    options.workers = 2;
    options.checkpoint_every = 0;  // no migration: every attempt restarts
    options.retries = 1;
    options.fault.kind = FaultInjection::Kind::Kill;
    options.fault.scenario = 1;
    options.fault.after_iteration = 1;
    options.fault.persistent = true;
    const DispatchReport got = dispatch_scenarios(source, scenarios, options);

    EXPECT_FALSE(got.complete);
    ASSERT_EQ(got.outcomes.size(), scenarios.size());
    EXPECT_FALSE(got.outcomes[1].ok);
    EXPECT_NE(got.outcomes[1].error.find("retry budget exhausted"),
              std::string::npos)
        << got.outcomes[1].error;
    EXPECT_EQ(got.outcomes[1].attempts, 2);  // retries + 1, deterministic
    // The other scenarios still complete and match the reference.
    EXPECT_TRUE(got.outcomes[0].ok);
    EXPECT_TRUE(got.outcomes[2].ok);
    const std::string json = json_of(got);
    EXPECT_NE(json.find("\"incomplete\":true"), std::string::npos);
    EXPECT_NE(json.find("retry budget exhausted"), std::string::npos);
}

TEST(Dispatch, WorkerRefusesFingerprintMismatch) {
    REQUIRE_SERVE_BIN();
    // Talk to a real serve worker directly and hand it a run frame whose
    // library fingerprint cannot match: the worker must answer with a
    // deterministic err frame (and stay alive), never run the scenario.
    dist::WorkerProcess worker = dist::spawn_worker({serve_bin(), "serve"});
    dist::RunRequest request;
    request.job = 0;
    request.fingerprint = 0xdeadbeef;  // not any real library's FNV digest
    request.scenario.name = "mismatch";
    request.scenario.max_iterations = 1;
    ASSERT_TRUE(dist::write_all(
        worker.out_fd,
        dist::encode_frame(dist::FrameType::Run, dist::encode_run(request))));

    dist::FrameParser parser;
    char buf[4096];
    bool saw_hello = false;
    bool saw_err = false;
    while (!saw_err) {
        const std::size_t n = dist::read_some(worker.in_fd, buf, sizeof(buf));
        ASSERT_GT(n, 0u) << "worker exited before answering";
        parser.feed(buf, n);
        while (const auto frame = parser.next()) {
            if (frame->type == dist::FrameType::Hello) {
                saw_hello = true;
            } else if (frame->type == dist::FrameType::Error) {
                const dist::ErrorMsg msg = dist::parse_error(frame->payload);
                EXPECT_EQ(msg.job, 0);
                EXPECT_NE(msg.message.find("fingerprint"), std::string::npos)
                    << msg.message;
                saw_err = true;
            } else {
                FAIL() << "unexpected frame "
                       << dist::frame_type_name(frame->type);
            }
        }
    }
    EXPECT_TRUE(saw_hello);
    dist::write_all(worker.out_fd,
                    dist::encode_frame(dist::FrameType::Quit, ""));
}

TEST(FrameParser, ReassemblesByteAtATime) {
    const std::string stream =
        dist::encode_frame(dist::FrameType::Hello, dist::encode_hello()) +
        dist::encode_frame(dist::FrameType::Heartbeat,
                           dist::encode_heartbeat({3, 17})) +
        dist::encode_frame(dist::FrameType::Quit, "") +
        dist::encode_frame(dist::FrameType::Checkpoint,
                           dist::encode_checkpoint({1, "line one\nline two\n"}));
    dist::FrameParser parser;
    std::vector<dist::Frame> frames;
    for (const char byte : stream) {
        parser.feed(&byte, 1);
        while (const auto frame = parser.next()) frames.push_back(*frame);
    }
    ASSERT_EQ(frames.size(), 4u);
    EXPECT_EQ(frames[0].type, dist::FrameType::Hello);
    const dist::HeartbeatMsg beat = dist::parse_heartbeat(frames[1].payload);
    EXPECT_EQ(beat.job, 3);
    EXPECT_EQ(beat.iteration, 17);
    EXPECT_EQ(frames[2].type, dist::FrameType::Quit);
    const dist::CheckpointMsg ckpt = dist::parse_checkpoint(frames[3].payload);
    EXPECT_EQ(ckpt.job, 1);
    EXPECT_EQ(ckpt.checkpoint, "line one\nline two\n");
}

TEST(FrameParser, RejectsOversizedAndMalformedHeaders) {
    {
        dist::FrameParser parser;
        const std::string oversized = "statim-frame run 999999999999\n";
        parser.feed(oversized.data(), oversized.size());
        EXPECT_THROW((void)parser.next(), Error);
    }
    {
        dist::FrameParser parser;
        const std::string unknown = "statim-frame bogus 3\nabc\n";
        parser.feed(unknown.data(), unknown.size());
        EXPECT_THROW((void)parser.next(), Error);
    }
    {
        dist::FrameParser parser;
        const std::string garbage = "GET / HTTP/1.1\n";
        parser.feed(garbage.data(), garbage.size());
        EXPECT_THROW((void)parser.next(), Error);
    }
}

TEST(Dispatch, RunRequestRoundTripsCheckpointBytes) {
    dist::RunRequest request;
    request.job = 5;
    request.attempt = 2;
    request.source.kind = DesignSource::Kind::BenchFile;
    request.source.name = "designs/my circuit.bench";
    request.source.lib_path = "libs/fast.lib";
    request.fingerprint = 0x1234abcd5678ef01ull;
    request.checkpoint_every = 3;
    request.fault_kind = FaultInjection::Kind::Hang;
    request.fault_after = 4;
    request.scenario.name = "round trip";
    request.scenario.mc_samples = 42;
    // A resume stream is opaque bytes to the protocol — including lines
    // that look like run-request keys.
    request.resume_checkpoint = "statim-checkpoint 1\nscenario evil\nend\n";

    const dist::RunRequest parsed = dist::parse_run(dist::encode_run(request));
    EXPECT_EQ(parsed.job, request.job);
    EXPECT_EQ(parsed.attempt, request.attempt);
    EXPECT_EQ(parsed.source.kind, request.source.kind);
    EXPECT_EQ(parsed.source.name, request.source.name);
    EXPECT_EQ(parsed.source.lib_path, request.source.lib_path);
    EXPECT_EQ(parsed.fingerprint, request.fingerprint);
    EXPECT_EQ(parsed.checkpoint_every, request.checkpoint_every);
    EXPECT_EQ(parsed.fault_kind, request.fault_kind);
    EXPECT_EQ(parsed.fault_after, request.fault_after);
    EXPECT_EQ(parsed.scenario.name, request.scenario.name);
    EXPECT_EQ(parsed.scenario.mc_samples, request.scenario.mc_samples);
    EXPECT_EQ(parsed.resume_checkpoint, request.resume_checkpoint);
}

TEST(Version, ReportsVersionAndFingerprint) {
    EXPECT_STRNE(version(), "");
    EXPECT_NE(builtin_library_fingerprint(), 0u);
    // The builtin fingerprint must agree with the one checkpoints embed
    // for registry designs (the dispatch handshake relies on this).
    const Design design = Design::from_registry("c17");
    EXPECT_EQ(builtin_library_fingerprint(),
              detail::library_fingerprint(design.library()));
}

}  // namespace
}  // namespace statim::api
