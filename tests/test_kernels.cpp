// Unit tests of the SIMD kernel dispatch layer (prob/kernels): every
// available dispatch level must produce results *bitwise* identical to
// the scalar reference across the five routed operators, including the
// shapes that exercise the vector kernels' edge paths — single-bin and
// point operands, interior zero masses, disjoint supports, and sizes
// straddling the 2/4-lane remainder boundaries. Also covers the
// STATIM_SIMD parsing/forcing error surface.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "prob/arena.hpp"
#include "prob/kernels/kernels.hpp"
#include "prob/ops.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace statim::prob {
namespace {

/// Restores the dispatch level active at construction — tests that force
/// levels must not leak the forced table into the rest of the suite.
class ForceGuard {
  public:
    ForceGuard()
        : level_(kernels::active().level), fast_math_(kernels::active().fast_math) {}
    ~ForceGuard() { kernels::force(level_, fast_math_); }
    ForceGuard(const ForceGuard&) = delete;
    ForceGuard& operator=(const ForceGuard&) = delete;

  private:
    kernels::Level level_;
    bool fast_math_;
};

/// Non-scalar levels available in this build+host (often just {} or
/// {Avx2} — the suite is still meaningful: the scalar restructure is
/// A/B-tested against history by the rest of the suite).
std::vector<kernels::Level> simd_levels() {
    std::vector<kernels::Level> out;
    for (const kernels::Level l : kernels::available_levels())
        if (l != kernels::Level::Scalar) out.push_back(l);
    return out;
}

bool bits_equal(const Pdf& a, const Pdf& b) {
    if (a.first_bin() != b.first_bin() || a.size() != b.size()) return false;
    return std::memcmp(a.mass().data(), b.mass().data(),
                       a.size() * sizeof(double)) == 0;
}

bool bits_equal(double a, double b) {
    return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/// Mass vector with interior zeros — zero-weight rows take the convolve
/// kernels' skip path, zero bins stress the trimming in from_mass.
Pdf sparse_pdf(Rng& rng, std::size_t bins, std::int64_t first) {
    std::vector<double> mass(bins, 0.0);
    bool any = false;
    for (double& m : mass) {
        if (rng.uniform() < 0.4) continue;
        m = rng.uniform(0.001, 1.0);
        any = true;
    }
    if (!any) mass[bins / 2] = 1.0;
    return Pdf::from_mass(first, std::move(mass));
}

struct OpResults {
    Pdf conv, smax, copied;
    std::int64_t shift{0};
    double ks{0.0};
};

OpResults run_all_ops(const Pdf& a, const Pdf& b) {
    OpResults r;
    PdfArena& arena = thread_arena();
    const ScopedRewind scope(arena);
    r.conv = convolve_into(arena, a, b).to_pdf();
    r.smax = stat_max_into(arena, a, b).to_pdf();
    r.copied = copy_into(arena, a).to_pdf();
    r.shift = max_percentile_shift_bins(a, b);
    r.ks = ks_distance(a, b);
    return r;
}

void expect_level_matches_scalar(const Pdf& a, const Pdf& b, const char* what) {
    ForceGuard guard;
    kernels::force(kernels::Level::Scalar, false);
    const OpResults ref = run_all_ops(a, b);
    for (const kernels::Level level : simd_levels()) {
        kernels::force(level, false);
        const OpResults got = run_all_ops(a, b);
        const char* name = kernels::level_name(level);
        EXPECT_TRUE(bits_equal(got.conv, ref.conv))
            << what << ": convolve differs on " << name;
        EXPECT_TRUE(bits_equal(got.smax, ref.smax))
            << what << ": stat_max differs on " << name;
        EXPECT_TRUE(bits_equal(got.copied, ref.copied))
            << what << ": copy differs on " << name;
        EXPECT_EQ(got.shift, ref.shift)
            << what << ": shift_bins differs on " << name;
        EXPECT_TRUE(bits_equal(got.ks, ref.ks))
            << what << ": ks_distance differs on " << name;
    }
}

TEST(Kernels, RemainderSizesMatchScalarBitwise) {
    // Every size in 1..17 plus the lane-boundary straddles: covers 0..4+
    // leftover lanes for both the 4-wide AVX2 and 2-wide NEON loops, and
    // the stat_max combine's off-by-one (i starts at 1) windows.
    Rng rng(4242);
    for (const std::size_t na : {1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u, 10u, 11u,
                                 12u, 13u, 14u, 15u, 16u, 17u, 31u, 32u, 33u,
                                 63u, 64u, 65u, 100u}) {
        const Pdf a = sparse_pdf(rng, na, rng.uniform_int(-20, 20));
        const Pdf b =
            sparse_pdf(rng, static_cast<std::size_t>(rng.uniform_int(1, 33)),
                       rng.uniform_int(-20, 20));
        expect_level_matches_scalar(a, b, "remainder sweep");
    }
}

TEST(Kernels, PointAndSingleBinOperands) {
    const Pdf point = Pdf::point(7);
    const Pdf one_bin = Pdf::from_mass(-3, {2.5});
    Rng rng(7);
    const Pdf body = sparse_pdf(rng, 37, -5);
    expect_level_matches_scalar(point, one_bin, "point vs single-bin");
    expect_level_matches_scalar(point, body, "point vs body");
    expect_level_matches_scalar(body, one_bin, "body vs single-bin");
    expect_level_matches_scalar(point, point, "point vs itself");
}

TEST(Kernels, DisjointAndPartialOverlaps) {
    Rng rng(99);
    const Pdf a = sparse_pdf(rng, 40, 0);
    const Pdf far_right = sparse_pdf(rng, 24, 1000);   // fully disjoint
    const Pdf overlap = sparse_pdf(rng, 24, 30);       // partial overlap
    const Pdf inside = sparse_pdf(rng, 8, 10);         // contained support
    expect_level_matches_scalar(a, far_right, "disjoint");
    expect_level_matches_scalar(far_right, a, "disjoint flipped");
    expect_level_matches_scalar(a, overlap, "partial overlap");
    expect_level_matches_scalar(a, inside, "contained");
}

TEST(Kernels, IdenticalOperands) {
    Rng rng(1234);
    const Pdf a = sparse_pdf(rng, 64, 5);
    expect_level_matches_scalar(a, a, "identical operands");
}

TEST(Kernels, ScalarFirstInAvailableLevels) {
    const auto levels = kernels::available_levels();
    ASSERT_FALSE(levels.empty());
    EXPECT_EQ(levels.front(), kernels::Level::Scalar);
    for (const kernels::Level l : levels) EXPECT_TRUE(kernels::supported(l));
}

TEST(Kernels, ParseLevelVocabulary) {
    EXPECT_EQ(kernels::parse_level("scalar"), kernels::Level::Scalar);
    EXPECT_TRUE(kernels::supported(kernels::parse_level("auto")));
    EXPECT_THROW((void)kernels::parse_level("sse9"), ConfigError);
    EXPECT_THROW((void)kernels::parse_level(""), ConfigError);
    EXPECT_THROW((void)kernels::parse_level("AVX2"), ConfigError);  // case-sensitive
}

TEST(Kernels, ForceUnsupportedLevelThrows) {
    ForceGuard guard;
    for (const kernels::Level l :
         {kernels::Level::Scalar, kernels::Level::Avx2, kernels::Level::Neon}) {
        if (kernels::supported(l)) {
            kernels::force(l);
            EXPECT_EQ(kernels::active().level, l);
        } else {
            EXPECT_THROW(kernels::force(l), ConfigError);
            EXPECT_THROW((void)kernels::table_for(l, false), ConfigError);
        }
    }
}

TEST(Kernels, TableNamesAndFastMathFlags) {
    for (const kernels::Level l : kernels::available_levels()) {
        const kernels::KernelTable& plain = kernels::table_for(l, false);
        EXPECT_FALSE(plain.fast_math);
        EXPECT_EQ(plain.level, l);
        EXPECT_STREQ(plain.name, l == kernels::Level::Scalar
                                     ? "scalar"
                                     : kernels::level_name(l));
        if (l != kernels::Level::Scalar) {
            // Fast-math variants exist for SIMD levels, carry the flag,
            // and only the convolve entry point differs.
            const kernels::KernelTable& fm = kernels::table_for(l, true);
            EXPECT_TRUE(fm.fast_math);
            EXPECT_EQ(fm.stat_max_combine, plain.stat_max_combine);
            EXPECT_EQ(fm.max_abs_diff, plain.max_abs_diff);
            EXPECT_NE(fm.convolve_accum, plain.convolve_accum);
        } else {
            // Scalar ignores the fast-math request entirely.
            EXPECT_FALSE(kernels::table_for(l, true).fast_math);
        }
    }
}

TEST(Kernels, ArenaFoldMatchesPairwisePdfFold) {
    // The span overloads (the O(k)-copy fix) against the classic fold.
    Rng rng(555);
    std::vector<Pdf> pdfs;
    for (int i = 0; i < 7; ++i)
        pdfs.push_back(sparse_pdf(
            rng, static_cast<std::size_t>(rng.uniform_int(1, 50)),
            rng.uniform_int(-30, 30)));
    Pdf pairwise = pdfs[0];
    for (std::size_t i = 1; i < pdfs.size(); ++i)
        pairwise = stat_max(pairwise, pdfs[i]);

    EXPECT_TRUE(bits_equal(stat_max(std::span<const Pdf>(pdfs)), pairwise));

    PdfArena& arena = thread_arena();
    const ScopedRewind scope(arena);
    const std::vector<PdfView> views(pdfs.begin(), pdfs.end());
    EXPECT_TRUE(bits_equal(stat_max_into(arena, views).to_pdf(), pairwise));
    EXPECT_THROW((void)stat_max_into(arena, std::span<const PdfView>{}),
                 ConfigError);
}

TEST(Kernels, ForcedLevelSurvivesUntilNextForce) {
    ForceGuard guard;
    kernels::force(kernels::Level::Scalar, false);
    EXPECT_EQ(kernels::active().level, kernels::Level::Scalar);
    EXPECT_STREQ(kernels::active().name, "scalar");
    const kernels::KernelTable& again = kernels::active();
    EXPECT_EQ(&again, &kernels::active());  // stable pointer between forces
}

}  // namespace
}  // namespace statim::prob
