// Unit tests for the deterministic and statistical coordinate-descent
// sizers: monotone improvement, budgets, stop reasons, width caps.
#include <gtest/gtest.h>

#include "core/sizers.hpp"
#include "netlist/iscas.hpp"

namespace statim::core {
namespace {

using netlist::Netlist;

TEST(DeterministicSizer, MonotonicallyImprovesNominalDelay) {
    cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = netlist::make_iscas("c432", lib);
    DeterministicSizerConfig cfg;
    cfg.max_iterations = 40;
    const DetSizingResult result = run_deterministic_sizing(nl, lib, cfg);

    ASSERT_EQ(result.iterations, 40);
    double prev = result.initial_delay_ns;
    for (const auto& rec : result.history) {
        EXPECT_LT(rec.circuit_delay_after_ns, prev + 1e-12) << "iter " << rec.iteration;
        EXPECT_GT(rec.sensitivity, 0.0);
        prev = rec.circuit_delay_after_ns;
    }
    EXPECT_LT(result.final_delay_ns, result.initial_delay_ns);
    EXPECT_GT(result.final_area, result.initial_area);
}

TEST(DeterministicSizer, AreaGrowsByOneStepPerIteration) {
    cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = netlist::make_iscas("c432", lib);
    DeterministicSizerConfig cfg;
    cfg.max_iterations = 10;
    cfg.delta_w = 0.5;
    const DetSizingResult result = run_deterministic_sizing(nl, lib, cfg);
    double prev_area = result.initial_area;
    for (const auto& rec : result.history) {
        const double grown = rec.area_after - prev_area;
        // One gate grew by delta_w * its cell area (cell areas are 1..3.5).
        EXPECT_GT(grown, 0.5 * 0.9);
        EXPECT_LT(grown, 0.5 * 4.0);
        prev_area = rec.area_after;
    }
}

TEST(DeterministicSizer, RespectsAreaBudget) {
    cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = netlist::make_iscas("c432", lib);
    DeterministicSizerConfig cfg;
    cfg.max_iterations = 1000;
    cfg.area_budget = 3.0;
    const DetSizingResult result = run_deterministic_sizing(nl, lib, cfg);
    EXPECT_EQ(result.stop_reason, "area budget");
    EXPECT_GE(result.final_area - result.initial_area, 3.0);
    EXPECT_LT(result.final_area - result.initial_area, 3.0 + 4.0);  // one step over
}

TEST(DeterministicSizer, RespectsWidthCap) {
    cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = netlist::make_iscas("c17", lib);
    DeterministicSizerConfig cfg;
    cfg.max_iterations = 10000;
    cfg.max_width = 2.0;
    const DetSizingResult result = run_deterministic_sizing(nl, lib, cfg);
    EXPECT_NE(result.stop_reason, "iteration budget");
    for (const auto& g : nl.gates()) EXPECT_LE(g.width, 2.0 + 1e-12);
}

TEST(DeterministicSizer, RejectsBadConfig) {
    cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = netlist::make_iscas("c17", lib);
    DeterministicSizerConfig cfg;
    cfg.delta_w = 0.0;
    EXPECT_THROW((void)run_deterministic_sizing(nl, lib, cfg), ConfigError);
}

TEST(DeterministicSizer, IncrementalAndFullStaTrajectoriesAreIdentical) {
    // The incremental baseline (cone-scoped arrival re-relaxation after
    // each committed resize, driven by DelayCalc's changed-edge set) must
    // walk exactly the trajectory of the full-STA-per-iteration reference.
    cells::Library lib = cells::Library::standard_180nm();
    for (const char* circuit : {"c432", "c880"}) {
        DetSizingResult results[2];
        for (const int mode : {0, 1}) {  // 0 = full, 1 = incremental
            Netlist nl = netlist::make_iscas(circuit, lib);
            DeterministicSizerConfig cfg;
            cfg.max_iterations = 30;
            cfg.incremental_sta = mode == 1;
            results[mode] = run_deterministic_sizing(nl, lib, cfg);
        }
        ASSERT_EQ(results[0].history.size(), results[1].history.size()) << circuit;
        EXPECT_EQ(results[0].final_delay_ns, results[1].final_delay_ns) << circuit;
        EXPECT_EQ(results[0].final_area, results[1].final_area) << circuit;
        EXPECT_EQ(results[0].stop_reason, results[1].stop_reason) << circuit;
        for (std::size_t i = 0; i < results[0].history.size(); ++i) {
            EXPECT_EQ(results[0].history[i].gate, results[1].history[i].gate)
                << circuit << " iter " << i;
            EXPECT_EQ(results[0].history[i].sensitivity,
                      results[1].history[i].sensitivity)
                << circuit << " iter " << i;
            EXPECT_EQ(results[0].history[i].circuit_delay_after_ns,
                      results[1].history[i].circuit_delay_after_ns)
                << circuit << " iter " << i;
        }
    }
}

TEST(StatisticalSizer, ImprovesP99Monotonically) {
    cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = netlist::make_iscas("c432", lib);
    Context ctx(nl, lib);
    StatisticalSizerConfig cfg;
    cfg.max_iterations = 15;
    const SizingResult result = run_statistical_sizing(ctx, cfg);

    ASSERT_EQ(result.iterations, 15);
    double prev = result.initial_objective_ns;
    for (const auto& rec : result.history) {
        EXPECT_GT(rec.sensitivity, 0.0) << "iter " << rec.iteration;
        EXPECT_LE(rec.objective_after_ns, prev + 1e-9) << "iter " << rec.iteration;
        prev = rec.objective_after_ns;
    }
    EXPECT_LT(result.final_objective_ns, result.initial_objective_ns);
}

TEST(StatisticalSizer, SelectorsProduceIdenticalTrajectories) {
    cells::Library lib = cells::Library::standard_180nm();
    std::vector<std::vector<std::uint32_t>> trajectories;
    for (SelectorKind kind :
         {SelectorKind::Pruned, SelectorKind::BruteFull, SelectorKind::BruteCone}) {
        Netlist nl = netlist::make_iscas("c17", lib);
        Context ctx(nl, lib);
        StatisticalSizerConfig cfg;
        cfg.max_iterations = 10;
        cfg.selector = kind;
        const SizingResult result = run_statistical_sizing(ctx, cfg);
        std::vector<std::uint32_t> gates;
        for (const auto& rec : result.history) gates.push_back(rec.gate.value);
        trajectories.push_back(std::move(gates));
    }
    EXPECT_EQ(trajectories[0], trajectories[1]);
    EXPECT_EQ(trajectories[0], trajectories[2]);
}

TEST(StatisticalSizer, ConvergesOnTinyCircuit) {
    cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = netlist::make_iscas("c17", lib);
    Context ctx(nl, lib);
    StatisticalSizerConfig cfg;
    cfg.max_iterations = 100000;
    cfg.max_width = 2.0;  // tight cap forces convergence quickly
    const SizingResult result = run_statistical_sizing(ctx, cfg);
    EXPECT_EQ(result.stop_reason, "converged");
    for (const auto& g : nl.gates()) EXPECT_LE(g.width, 2.0 + 1e-12);
}

TEST(StatisticalSizer, RespectsAreaBudget) {
    cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = netlist::make_iscas("c432", lib);
    Context ctx(nl, lib);
    StatisticalSizerConfig cfg;
    cfg.max_iterations = 10000;
    cfg.area_budget = 2.0;
    const SizingResult result = run_statistical_sizing(ctx, cfg);
    EXPECT_EQ(result.stop_reason, "area budget");
    EXPECT_GE(result.final_area - result.initial_area, 2.0);
}

TEST(StatisticalSizer, MultiGatePerIteration) {
    cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = netlist::make_iscas("c432", lib);
    Context ctx(nl, lib);
    StatisticalSizerConfig cfg;
    cfg.max_iterations = 3;
    cfg.gates_per_iteration = 3;
    const SizingResult result = run_statistical_sizing(ctx, cfg);
    // 3 iterations x 3 gates = 9 steps of delta_w total width growth.
    EXPECT_NEAR(nl.total_width() - 176.0, 9 * cfg.delta_w, 1e-9);
    EXPECT_LT(result.final_objective_ns, result.initial_objective_ns);
}

TEST(StatisticalSizer, MeanObjective) {
    cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = netlist::make_iscas("c17", lib);
    Context ctx(nl, lib);
    StatisticalSizerConfig cfg;
    cfg.objective = Objective::mean();
    cfg.max_iterations = 8;
    const SizingResult result = run_statistical_sizing(ctx, cfg);
    EXPECT_LT(result.final_objective_ns, result.initial_objective_ns);
}

TEST(StatisticalSizer, RejectsBadConfig) {
    cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = netlist::make_iscas("c17", lib);
    Context ctx(nl, lib);
    StatisticalSizerConfig bad;
    bad.delta_w = -1.0;
    EXPECT_THROW((void)run_statistical_sizing(ctx, bad), ConfigError);
    bad = {};
    bad.max_iterations = -1;
    EXPECT_THROW((void)run_statistical_sizing(ctx, bad), ConfigError);
    bad = {};
    bad.gates_per_iteration = -1;
    EXPECT_THROW((void)run_statistical_sizing(ctx, bad), ConfigError);
    // 0 is valid: resolve the batch size from STATIM_BATCH (default 1).
    bad = {};
    bad.gates_per_iteration = 0;
    bad.max_iterations = 0;
    EXPECT_NO_THROW((void)run_statistical_sizing(ctx, bad));
}

TEST(StatisticalSizer, StopsWhenTargetObjectiveMet) {
    cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = netlist::make_iscas("c432", lib);
    Context ctx(nl, lib);

    // Probe the starting point, then ask for a modest improvement.
    StatisticalSizerConfig probe;
    probe.max_iterations = 0;
    const double start = run_statistical_sizing(ctx, probe).initial_objective_ns;

    StatisticalSizerConfig cfg;
    cfg.max_iterations = 10000;
    cfg.target_objective_ns = 0.98 * start;
    const SizingResult result = run_statistical_sizing(ctx, cfg);
    EXPECT_EQ(result.stop_reason, "target met");
    EXPECT_LE(result.final_objective_ns, cfg.target_objective_ns + 1e-12);
    EXPECT_LT(result.iterations, 10000);
}

TEST(StatisticalSizer, AlreadyMetTargetIsANoOp) {
    cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = netlist::make_iscas("c17", lib);
    Context ctx(nl, lib);
    StatisticalSizerConfig cfg;
    cfg.max_iterations = 100;
    cfg.target_objective_ns = 1000.0;  // trivially satisfied at the start
    const SizingResult result = run_statistical_sizing(ctx, cfg);
    EXPECT_EQ(result.stop_reason, "target met");
    EXPECT_EQ(result.iterations, 0);
}

TEST(StatisticalSizer, ZeroIterationsIsANoOp) {
    cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = netlist::make_iscas("c17", lib);
    Context ctx(nl, lib);
    StatisticalSizerConfig cfg;
    cfg.max_iterations = 0;
    const SizingResult result = run_statistical_sizing(ctx, cfg);
    EXPECT_EQ(result.iterations, 0);
    EXPECT_TRUE(result.history.empty());
    EXPECT_DOUBLE_EQ(result.final_objective_ns, result.initial_objective_ns);
}

}  // namespace
}  // namespace statim::core
