// Unit tests for prob ops: convolution, statistical max, Δ metric, KS.
#include <gtest/gtest.h>

#include <cmath>

#include "prob/gaussian.hpp"
#include "prob/ops.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace statim::prob {
namespace {

Pdf random_pdf(Rng& rng, int max_len = 24, std::int64_t offset_span = 50) {
    const auto len = static_cast<std::size_t>(rng.uniform_int(1, max_len));
    std::vector<double> mass(len);
    for (double& m : mass) m = rng.uniform(0.01, 1.0);  // contiguous support
    return Pdf::from_mass(rng.uniform_int(-offset_span, offset_span), std::move(mass));
}

TEST(Convolve, PointPlusPointIsShiftedPoint) {
    const Pdf c = convolve(Pdf::point(3), Pdf::point(-5));
    EXPECT_TRUE(c.is_point());
    EXPECT_EQ(c.first_bin(), -2);
}

TEST(Convolve, MeansAndVariancesAdd) {
    Rng rng(101);
    for (int trial = 0; trial < 50; ++trial) {
        const Pdf a = random_pdf(rng);
        const Pdf b = random_pdf(rng);
        const Pdf c = convolve(a, b);
        EXPECT_NEAR(c.mean_bins(), a.mean_bins() + b.mean_bins(), 1e-9);
        EXPECT_NEAR(c.variance_bins(), a.variance_bins() + b.variance_bins(), 1e-8);
    }
}

TEST(Convolve, SupportIsMinkowskiSum) {
    const Pdf a = Pdf::from_mass(2, {1.0, 1.0, 1.0});
    const Pdf b = Pdf::from_mass(-1, {1.0, 1.0});
    const Pdf c = convolve(a, b);
    EXPECT_EQ(c.first_bin(), 1);
    EXPECT_EQ(c.last_bin(), 4);
    EXPECT_EQ(c.size(), 4u);
}

TEST(Convolve, CommutativeUpToRounding) {
    // Swapping operands changes the floating-point accumulation order, so
    // equality is near-exact, not bitwise (the engines never rely on it:
    // they always convolve (arrival, delay) in that order).
    Rng rng(103);
    for (int trial = 0; trial < 20; ++trial) {
        const Pdf a = random_pdf(rng);
        const Pdf b = random_pdf(rng);
        const Pdf ab = convolve(a, b);
        const Pdf ba = convolve(b, a);
        ASSERT_EQ(ab.first_bin(), ba.first_bin());
        ASSERT_EQ(ab.size(), ba.size());
        for (std::size_t k = 0; k < ab.size(); ++k)
            EXPECT_NEAR(ab.mass()[k], ba.mass()[k], 1e-12);
    }
}

TEST(Convolve, InvalidOperandThrows) {
    EXPECT_THROW((void)convolve(Pdf{}, Pdf::point(0)), ConfigError);
}

TEST(StatMax, PointsBehaveLikeScalarMax) {
    const Pdf m = stat_max(Pdf::point(4), Pdf::point(9));
    EXPECT_TRUE(m.is_point());
    EXPECT_EQ(m.first_bin(), 9);
}

TEST(StatMax, DominatedOperandIsAbsorbed) {
    // b lies entirely above a: max(a, b) == b.
    const Pdf a = Pdf::from_mass(0, {0.3, 0.7});
    const Pdf b = Pdf::from_mass(10, {0.5, 0.5});
    EXPECT_EQ(stat_max(a, b), b);
    EXPECT_EQ(stat_max(b, a), b);
}

TEST(StatMax, CdfIsProductOfCdfs) {
    Rng rng(107);
    for (int trial = 0; trial < 30; ++trial) {
        const Pdf a = random_pdf(rng);
        const Pdf b = random_pdf(rng);
        const Pdf m = stat_max(a, b);
        for (std::int64_t t = m.first_bin() - 1; t <= m.last_bin() + 1; ++t)
            EXPECT_NEAR(m.cdf_at(t), std::min(a.cdf_at(t) * b.cdf_at(t), 1.0), 1e-9)
                << "trial " << trial << " t " << t;
    }
}

TEST(StatMax, StochasticallyDominatesBothInputs) {
    Rng rng(109);
    for (int trial = 0; trial < 30; ++trial) {
        const Pdf a = random_pdf(rng);
        const Pdf b = random_pdf(rng);
        const Pdf m = stat_max(a, b);
        for (std::int64_t t = m.first_bin(); t <= m.last_bin(); ++t) {
            EXPECT_LE(m.cdf_at(t), a.cdf_at(t) + 1e-12);
            EXPECT_LE(m.cdf_at(t), b.cdf_at(t) + 1e-12);
        }
    }
}

TEST(StatMax, FoldMatchesPairwise) {
    Rng rng(113);
    const Pdf a = random_pdf(rng);
    const Pdf b = random_pdf(rng);
    const Pdf c = random_pdf(rng);
    const std::vector<Pdf> all = {a, b, c};
    EXPECT_EQ(stat_max(std::span<const Pdf>(all)), stat_max(stat_max(a, b), c));
}

TEST(StatMax, EmptySpanThrows) {
    const std::vector<Pdf> none;
    EXPECT_THROW((void)stat_max(std::span<const Pdf>(none)), ConfigError);
}

TEST(MaxPercentileShift, ExactForPureShifts) {
    Rng rng(127);
    for (int trial = 0; trial < 50; ++trial) {
        const Pdf a = random_pdf(rng);
        Pdf b = a;
        const auto shift = rng.uniform_int(-20, 20);
        b.shift(-shift);  // b earlier by `shift` => improvement = shift
        EXPECT_NEAR(max_percentile_shift(a, b), static_cast<double>(shift), 1e-9);
    }
}

TEST(MaxPercentileShift, ZeroForIdenticalInputs) {
    Rng rng(131);
    const Pdf a = random_pdf(rng);
    EXPECT_NEAR(max_percentile_shift(a, a), 0.0, 1e-12);
}

TEST(MaxPercentileShift, BoundsEveryPercentileDifference) {
    Rng rng(137);
    for (int trial = 0; trial < 40; ++trial) {
        const Pdf a = random_pdf(rng);
        const Pdf b = random_pdf(rng);
        const double delta = max_percentile_shift(a, b);
        for (double p : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0})
            EXPECT_GE(delta + 1e-9, a.percentile_bin(p) - b.percentile_bin(p))
                << "trial " << trial << " p " << p;
    }
}

TEST(MaxPercentileShift, AntisymmetricSignConvention) {
    // If b is strictly earlier than a, shift(a,b) > 0 and shift(b,a) < 0.
    const Pdf a = Pdf::from_mass(10, {0.5, 0.5});
    const Pdf b = Pdf::from_mass(0, {0.5, 0.5});
    EXPECT_GT(max_percentile_shift(a, b), 0.0);
    EXPECT_LT(max_percentile_shift(b, a), 0.0);
}

TEST(MaxPercentileShift, MatchesBruteForceScan) {
    Rng rng(139);
    for (int trial = 0; trial < 30; ++trial) {
        const Pdf a = random_pdf(rng, 12, 10);
        const Pdf b = random_pdf(rng, 12, 10);
        const double fast = max_percentile_shift(a, b);
        // Dense scan over p as the reference (knots are a superset of the
        // maximizer candidates, so sampling can only undershoot).
        double slow = -1e300;
        for (double p = 1e-6; p <= 1.0; p += 1e-4)
            slow = std::max(slow, a.percentile_bin(p) - b.percentile_bin(p));
        EXPECT_GE(fast + 1e-9, slow);
        EXPECT_NEAR(fast, slow, 0.05);  // dense grid approaches the knot max
    }
}

TEST(MaxPercentileShiftBins, ExactForIntegerShifts) {
    Rng rng(151);
    for (int trial = 0; trial < 50; ++trial) {
        const Pdf a = random_pdf(rng);
        Pdf b = a;
        const auto shift = rng.uniform_int(-20, 20);
        b.shift(-shift);
        EXPECT_EQ(max_percentile_shift_bins(a, b), shift);
    }
}

TEST(MaxPercentileShiftBins, DominatesInterpolatedWithinOneBin) {
    Rng rng(157);
    for (int trial = 0; trial < 60; ++trial) {
        const Pdf a = random_pdf(rng);
        const Pdf b = random_pdf(rng);
        const double interp = max_percentile_shift(a, b);
        const auto step = static_cast<double>(max_percentile_shift_bins(a, b));
        EXPECT_LT(interp, step + 1.0 + 1e-9);
        EXPECT_GT(interp, step - 1.0 - 1e-9);
    }
}

TEST(MaxPercentileShiftBins, ExactlyMonotoneUnderConvolution) {
    // Unlike the interpolated metric, the step metric never grows through
    // a shared convolution — the basis of the pruning bound's soundness.
    Rng rng(163);
    for (int trial = 0; trial < 60; ++trial) {
        const Pdf a = random_pdf(rng);
        const Pdf b = random_pdf(rng);
        const Pdf d = random_pdf(rng, 8);
        const auto before = max_percentile_shift_bins(a, b);
        const auto after = max_percentile_shift_bins(convolve(a, d), convolve(b, d));
        EXPECT_LE(after, before) << "trial " << trial;
    }
}

TEST(KsDistance, ZeroForIdentical) {
    const Pdf a = Pdf::from_mass(0, {0.5, 0.5});
    EXPECT_DOUBLE_EQ(ks_distance(a, a), 0.0);
}

TEST(KsDistance, OneForDisjointSupports) {
    const Pdf a = Pdf::from_mass(0, {1.0});
    const Pdf b = Pdf::from_mass(100, {1.0});
    EXPECT_DOUBLE_EQ(ks_distance(a, b), 1.0);
}

TEST(KsDistance, SymmetricAndBounded) {
    Rng rng(149);
    for (int trial = 0; trial < 30; ++trial) {
        const Pdf a = random_pdf(rng);
        const Pdf b = random_pdf(rng);
        const double d = ks_distance(a, b);
        EXPECT_DOUBLE_EQ(d, ks_distance(b, a));
        EXPECT_GE(d, 0.0);
        EXPECT_LE(d, 1.0 + 1e-12);  // rounding can graze the top
    }
}

}  // namespace
}  // namespace statim::prob
