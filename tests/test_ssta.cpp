// Unit tests for the block-based SSTA engine, edge-delay RVs and grid
// policy — including the bound property against Monte Carlo.
#include <gtest/gtest.h>

#include "core/context.hpp"
#include "mc/monte_carlo.hpp"
#include "netlist/iscas.hpp"
#include "ssta/edge_delays.hpp"
#include "ssta/engine.hpp"
#include "ssta/grid_policy.hpp"
#include "ssta/metrics.hpp"
#include "sta/sta.hpp"

namespace statim::ssta {
namespace {

using core::Context;
using netlist::Netlist;
using netlist::TimingGraph;

TEST(GridPolicyTest, PitchTracksNominalDelay) {
    cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = netlist::make_iscas("c432", lib);
    const TimingGraph graph(nl);
    const sta::DelayCalc dc(graph, lib);
    std::vector<double> arrival;
    const double nominal = sta::run_arrival(dc, arrival);

    GridPolicy policy;
    policy.target_bins = 500;
    const prob::TimeGrid grid = choose_grid(dc, policy);
    EXPECT_NEAR(grid.dt_ns(), nominal / 500.0, 1e-12);

    GridPolicy bad;
    bad.target_bins = 2;
    EXPECT_THROW((void)choose_grid(dc, bad), ConfigError);
}

TEST(EdgeDelaysTest, VirtualEdgesAreZeroPoints) {
    cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = netlist::make_iscas("c17", lib);
    Context ctx(nl, lib);
    const auto& graph = ctx.graph();
    for (EdgeId e : ctx.graph().out_edges(TimingGraph::source())) {
        EXPECT_TRUE(ctx.edge_delays().pdf(e).is_point());
        EXPECT_EQ(ctx.edge_delays().pdf(e).first_bin(), 0);
    }
    for (EdgeId e : graph.in_edges(TimingGraph::sink())) {
        EXPECT_TRUE(ctx.edge_delays().pdf(e).is_point());
    }
}

TEST(EdgeDelaysTest, GateEdgeMatchesNominalAndSigma) {
    cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = netlist::make_iscas("c17", lib);
    Context ctx(nl, lib);
    const auto& graph = ctx.graph();
    const auto& grid = ctx.grid();
    for (std::size_t gi = 0; gi < nl.gate_count(); ++gi) {
        const GateId g{static_cast<std::uint32_t>(gi)};
        for (EdgeId e : graph.gate_edges(g)) {
            const double nominal = ctx.delay_calc().edge_delay_ns(e);
            const prob::Pdf& pdf = ctx.edge_delays().pdf(e);
            EXPECT_NEAR(grid.time_of(pdf.mean_bins()), nominal, 2 * grid.dt_ns());
            const double sd = grid.dt_ns() * std::sqrt(pdf.variance_bins());
            // ±3σ truncation shrinks σ to ~0.973 of nominal σ.
            EXPECT_NEAR(sd, 0.9733 * 0.10 * nominal, 0.15 * 0.10 * nominal);
        }
    }
}

TEST(EdgeDelaysTest, SnapshotRestoreIsBitwise) {
    cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = netlist::make_iscas("c17", lib);
    Context ctx(nl, lib);
    const GateId g0{0};
    const auto edges = ctx.delay_calc().affected_edges(g0);
    const auto before = ctx.edge_delays().snapshot(edges);

    nl.gate(g0).width += 1.0;
    (void)ctx.delay_calc().update_for_resize(g0);
    ctx.edge_delays().update_edges(edges, ctx.delay_calc());
    EXPECT_FALSE(ctx.edge_delays().pdf(edges[0]) == before[0]);

    ctx.edge_delays().restore(edges, before);
    const auto after = ctx.edge_delays().snapshot(edges);
    for (std::size_t i = 0; i < edges.size(); ++i)
        EXPECT_EQ(after[i], ctx.edge_delays().pdf(edges[i]));

    std::vector<prob::Pdf> wrong_size;
    EXPECT_THROW(ctx.edge_delays().restore(edges, std::move(wrong_size)), ConfigError);
}

TEST(SstaEngineTest, ZeroSigmaReducesToDeterministicSta) {
    cells::Library lib = cells::Library::standard_180nm();
    lib.set_sigma_fraction(0.0);
    Netlist nl = netlist::make_iscas("c432", lib);
    Context ctx(nl, lib);
    ctx.run_ssta();

    const sta::StaResult sta = sta::run_sta(ctx.delay_calc());
    const double dt = ctx.grid().dt_ns();
    for (std::size_t n = 0; n < ctx.graph().node_count(); ++n) {
        const NodeId node{static_cast<std::uint32_t>(n)};
        const prob::PdfView a = ctx.engine().arrival(node);
        ASSERT_TRUE(a.valid());
        // With point-mass delays, arrivals are points; binning each edge
        // delay to the nearest bin bounds the error by dt/2 per level.
        EXPECT_TRUE(a.is_point());
        const double depth = ctx.graph().level(node);
        EXPECT_NEAR(ctx.grid().time_of(static_cast<double>(a.first_bin())),
                    sta.arrival[n], (depth + 1) * dt);
    }
}

TEST(SstaEngineTest, ArrivalsStochasticallyOrderedAlongEdges) {
    cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = netlist::make_iscas("c17", lib);
    Context ctx(nl, lib);
    ctx.run_ssta();
    // Every node's p50/p99 must be >= its predecessors' (delays >= 0).
    for (std::size_t ei = 0; ei < ctx.graph().edge_count(); ++ei) {
        const auto& e = ctx.graph().edge(EdgeId{static_cast<std::uint32_t>(ei)});
        for (double p : {0.5, 0.99}) {
            EXPECT_GE(ctx.engine().arrival(e.to).percentile_bin(p) + 1e-9,
                      ctx.engine().arrival(e.from).percentile_bin(p));
        }
    }
}

TEST(SstaEngineTest, DeterministicAcrossRuns) {
    cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = netlist::make_iscas("c499", lib);
    Context ctx(nl, lib);
    ctx.run_ssta();
    const prob::Pdf first = ctx.engine().sink_arrival().to_pdf();
    ctx.run_ssta();
    EXPECT_EQ(first, ctx.engine().sink_arrival());
}

TEST(SstaEngineTest, RequiresRunBeforeArrival) {
    cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = netlist::make_iscas("c17", lib);
    Context ctx(nl, lib);
    EXPECT_FALSE(ctx.engine().has_run());
    ctx.run_ssta();
    EXPECT_TRUE(ctx.engine().has_run());
}

class BoundVsMc : public ::testing::TestWithParam<const char*> {};

TEST_P(BoundVsMc, SinkCdfUpperBoundsExactDistribution) {
    // The independence max ignores reconvergence correlation, giving an
    // upper bound on circuit delay: every SSTA percentile must sit at or
    // above the Monte Carlo estimate (within sampling + binning noise),
    // and within a few percent at the 99-percentile (paper: < 1%).
    cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = netlist::make_iscas(GetParam(), lib);
    Context ctx(nl, lib);
    ctx.run_ssta();

    const auto mc = mc::run_monte_carlo(ctx.delay_calc(), {6000, 99});
    for (double p : {0.5, 0.9, 0.99}) {
        const double bound = percentile_ns(ctx.grid(), ctx.engine().sink_arrival(), p);
        const double exact = mc.percentile_ns(p);
        EXPECT_GE(bound, exact - 0.02 * exact) << "p=" << p;          // upper bound
        EXPECT_LE((bound - exact) / exact, 0.06) << "p=" << p;        // and tight
    }
}

INSTANTIATE_TEST_SUITE_P(Circuits, BoundVsMc,
                         ::testing::Values("c17", "c432", "c499", "c880"));

class SigmaSweep : public ::testing::TestWithParam<double> {};

TEST_P(SigmaSweep, BoundTracksMonteCarloAcrossVariability) {
    // The bound quality must not degrade with the variability level (the
    // paper fixes sigma at 10%; the framework accepts any).
    cells::Library lib = cells::Library::standard_180nm();
    lib.set_sigma_fraction(GetParam());
    netlist::Netlist nl = netlist::make_iscas("c432", lib);
    Context ctx(nl, lib);
    ctx.run_ssta();
    const auto mc = mc::run_monte_carlo(ctx.delay_calc(), {4000, 31});
    const double bound = percentile_ns(ctx.grid(), ctx.engine().sink_arrival(), 0.99);
    const double exact = mc.percentile_ns(0.99);
    EXPECT_GE(bound, exact * 0.98) << "sigma " << GetParam();
    EXPECT_LE((bound - exact) / exact, 0.08) << "sigma " << GetParam();
}

TEST_P(SigmaSweep, SpreadGrowsWithSigma) {
    cells::Library lib = cells::Library::standard_180nm();
    lib.set_sigma_fraction(GetParam());
    netlist::Netlist nl = netlist::make_iscas("c432", lib);
    Context ctx(nl, lib);
    ctx.run_ssta();
    const double spread = stddev_ns(ctx.grid(), ctx.engine().sink_arrival());
    // Crude proportionality: sigma fraction in, sigma of the sink out.
    EXPECT_GT(spread, 0.5 * GetParam() * 0.1);  // vs ~10% of a ~1.5ns mean... loose floor
}

INSTANTIATE_TEST_SUITE_P(Sigmas, SigmaSweep, ::testing::Values(0.05, 0.10, 0.15, 0.20));

TEST(Metrics, ConsistentWithPdfQueries) {
    const prob::TimeGrid grid(0.01);
    const prob::Pdf p = prob::Pdf::from_mass(100, {0.5, 0.5});
    EXPECT_DOUBLE_EQ(mean_ns(grid, p), 1.005);
    EXPECT_DOUBLE_EQ(percentile_ns(grid, p, 1.0), 1.01);
    EXPECT_NEAR(stddev_ns(grid, p), 0.005, 1e-12);
    EXPECT_DOUBLE_EQ(yield_at(grid, p, 1.0), 0.5);
    EXPECT_DOUBLE_EQ(yield_at(grid, p, 2.0), 1.0);
    EXPECT_DOUBLE_EQ(yield_at(grid, p, 0.5), 0.0);
}

}  // namespace
}  // namespace statim::ssta
