// Fixture: include-purity (line 2 breaks the boundary; line 3 is fine).
#include "core/context.hpp"
#include "api/statim.hpp"
