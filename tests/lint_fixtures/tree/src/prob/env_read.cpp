// Fixture: env-registry enforcement (line 2 unregistered; 3-4 registered).
auto fixture_a = env_string("STATIM_NOT_REGISTERED");
auto fixture_b = env_string("STATIM_DOCUMENTED");
auto fixture_c = env_string("STATIM_UNDOCUMENTED");
