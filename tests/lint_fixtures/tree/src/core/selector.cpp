// Fixture: one hot-path violation per line (lines 3-5); the path shadows
// a declared hot-path stem, so the hot-* rules apply here.
std::function<void()> fixture_callback;
double fixture_value = fixture_values.at(3);
std::unordered_map<int, int> fixture_lookup;
