// Fixture: one determinism violation per line (lines 2-5).
const char* fixture_env = getenv("PATH");
int fixture_rand = rand();
auto fixture_now = std::chrono::steady_clock::now();
std::map<int*, int> fixture_by_address;
