// Fixture: suppression semantics. The first getenv is justified
// (silenced); the second is bare (bare-suppression); the third names the
// wrong rule (getenv still fires); then a bare NOLINT and a justified one.
const char* fixture_ok = getenv("HOME");  // statim-lint: allow(getenv) fixture: sanctioned one-off read
const char* fixture_bare = getenv("HOME");  // statim-lint: allow(getenv)
const char* fixture_wrong = getenv("HOME");  // statim-lint: allow(clock-now) names a different rule
int fixture_bare_nolint = 0;  // NOLINT
int fixture_good_nolint = 0;  // NOLINT(bugprone-fixture) fixture: justified
