# Miniature env registry for the golden tests (shape-compatible with the
# real tools/statim_lint/env_registry.py).
ENV_REGISTRY = {
    # appears in src/prob/env_read.cpp and in README.md: fully clean
    "STATIM_DOCUMENTED": {"scope": "core", "desc": "clean fixture knob"},
    # appears in src/prob/env_read.cpp but not in README.md: env-readme
    "STATIM_UNDOCUMENTED": {"scope": "core", "desc": "undocumented knob"},
    # appears nowhere in the tree (but is in README): env-registry-stale
    "STATIM_STALE": {"scope": "core", "desc": "stale knob"},
}
