// Batched-commit properties (PR 3): k resizes + ONE merged-cone
// incremental refresh must be bitwise indistinguishable from k sequential
// resize+refresh cycles, select_top_k must be deterministic across
// selector kinds and thread counts, and the batched sizer loop must
// account for every committed gate without redundant refreshes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>

#include "core/downsize.hpp"
#include "core/front.hpp"
#include "core/sizers.hpp"
#include "core/trial_resize.hpp"
#include "netlist/iscas.hpp"
#include "ssta/criticality.hpp"
#include "util/thread_pool.hpp"

namespace statim::core {
namespace {

using netlist::Netlist;

/// k distinct gates spread over the id range, varied by `salt` so
/// successive batches touch different regions.
std::vector<GateId> spread_gates(const Netlist& nl, std::size_t k, std::size_t salt) {
    std::vector<GateId> gates;
    const std::size_t count = nl.gate_count();
    for (std::size_t i = 0; i < k; ++i)
        gates.push_back(GateId{static_cast<std::uint32_t>(
            (i * count / k + 7 * salt + 3) % count)});
    std::sort(gates.begin(), gates.end());
    gates.erase(std::unique(gates.begin(), gates.end()), gates.end());
    return gates;
}

bool all_arrivals_equal(const Context& a, const Context& b) {
    for (std::size_t n = 0; n < a.graph().node_count(); ++n) {
        const NodeId node{static_cast<std::uint32_t>(n)};
        if (!(a.engine().arrival(node) == b.engine().arrival(node))) return false;
    }
    return true;
}

// The satellite property: for every circuit, thread count and batch size,
// Context::apply_resizes + one refresh_ssta() reproduces the arrivals of
// the sequential per-gate commit path bit for bit. Both contexts advance
// through the same width trajectory, so the whole matrix runs on two full
// SSTA runs per circuit plus cheap incremental refreshes.
TEST(BatchCommit, MergedRefreshBitIdenticalToSequential) {
    cells::Library lib = cells::Library::standard_180nm();
    const std::size_t pool_before = default_thread_count();
    for (const char* circuit : {"c432", "c7552", "synth10k"}) {
        Netlist nl_batched = netlist::make_iscas(circuit, lib);
        Netlist nl_seq = netlist::make_iscas(circuit, lib);
        Context batched(nl_batched, lib);
        Context seq(nl_seq, lib);
        batched.run_ssta();
        seq.run_ssta();

        std::size_t salt = 0;
        for (const std::size_t k : {1u, 3u, 8u}) {
            for (const std::size_t threads : {1u, 2u, 7u}) {
                const std::vector<GateId> gates = spread_gates(nl_seq, k, ++salt);

                set_default_thread_count(threads);
                batched.set_ssta_threads(threads);
                std::vector<ResizeOp> ops;
                for (GateId g : gates) ops.push_back({g, 0.25});
                const std::vector<EdgeId> merged = batched.apply_resizes(ops);
                batched.refresh_ssta();

                seq.set_ssta_threads(1);
                std::size_t union_size = 0;
                for (GateId g : gates) {
                    std::vector<EdgeId> changed = seq.apply_resize(g, 0.25);
                    union_size += changed.size();
                    seq.refresh_ssta();
                }
                EXPECT_LE(merged.size(), union_size);  // deduplicated union

                EXPECT_TRUE(all_arrivals_equal(batched, seq))
                    << circuit << " k=" << k << " threads=" << threads;
            }
        }
    }
    set_default_thread_count(pool_before);
}

TEST(BatchCommit, SelectTopKMatchesSelectPrunedAtK1) {
    cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = netlist::make_iscas("c432", lib);
    Context ctx(nl, lib);
    ctx.run_ssta();
    const SelectorConfig cfg;

    const Selection pruned = select_pruned(ctx, cfg);
    const TopKSelection top = select_top_k(ctx, cfg, 1);
    ASSERT_EQ(top.picks.size(), 1u);
    EXPECT_EQ(top.picks[0].gate, pruned.gate);
    EXPECT_EQ(top.picks[0].sensitivity, pruned.sensitivity);
    // The k=1 bound race is the paper's algorithm move for move.
    EXPECT_EQ(top.stats.candidates, pruned.stats.candidates);
    EXPECT_EQ(top.stats.completed, pruned.stats.completed);
    EXPECT_EQ(top.stats.pruned, pruned.stats.pruned);
    EXPECT_EQ(top.stats.died, pruned.stats.died);
    EXPECT_EQ(top.stats.nodes_computed, pruned.stats.nodes_computed);
    EXPECT_EQ(top.stats.levels_stepped, pruned.stats.levels_stepped);
}

TEST(BatchCommit, TopKSelectorKindsAgree) {
    cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = netlist::make_iscas("c432", lib);
    Context ctx(nl, lib);
    ctx.run_ssta();
    const SelectorConfig cfg;

    const TopKSelection pruned = select_top_k(ctx, cfg, 4, SelectorKind::Pruned);
    const TopKSelection brute = select_top_k(ctx, cfg, 4, SelectorKind::BruteFull);
    const TopKSelection cone = select_top_k(ctx, cfg, 4, SelectorKind::BruteCone);
    ASSERT_FALSE(pruned.picks.empty());
    ASSERT_EQ(pruned.picks.size(), brute.picks.size());
    ASSERT_EQ(pruned.picks.size(), cone.picks.size());
    for (std::size_t i = 0; i < pruned.picks.size(); ++i) {
        EXPECT_EQ(pruned.picks[i].gate, brute.picks[i].gate) << i;
        EXPECT_EQ(pruned.picks[i].sensitivity, brute.picks[i].sensitivity) << i;
        EXPECT_EQ(pruned.picks[i].gate, cone.picks[i].gate) << i;
        EXPECT_EQ(pruned.picks[i].sensitivity, cone.picks[i].sensitivity) << i;
    }
    EXPECT_EQ(pruned.conflicts_skipped, brute.conflicts_skipped);
}

TEST(BatchCommit, TopKThreadCountInvariant) {
    cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = netlist::make_iscas("c432", lib);
    Context ctx(nl, lib);
    ctx.run_ssta();
    const std::size_t pool_before = default_thread_count();

    SelectorConfig cfg;
    cfg.threads = 1;
    const TopKSelection reference = select_top_k(ctx, cfg, 4);
    ASSERT_FALSE(reference.picks.empty());
    for (const std::size_t threads : {2u, 7u}) {
        set_default_thread_count(threads);
        cfg.threads = threads;
        const TopKSelection parallel = select_top_k(ctx, cfg, 4);
        ASSERT_EQ(parallel.picks.size(), reference.picks.size()) << threads;
        for (std::size_t i = 0; i < reference.picks.size(); ++i) {
            EXPECT_EQ(parallel.picks[i].gate, reference.picks[i].gate)
                << threads << " pick " << i;
            EXPECT_EQ(parallel.picks[i].sensitivity, reference.picks[i].sensitivity)
                << threads << " pick " << i;
        }
        // Work invariants survive the shard racing.
        EXPECT_EQ(parallel.stats.candidates,
                  parallel.stats.completed + parallel.stats.pruned +
                      parallel.stats.died);
    }
    set_default_thread_count(pool_before);
}

TEST(BatchCommit, TopKPicksAreConeDisjoint) {
    cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = netlist::make_iscas("c432", lib);
    Context ctx(nl, lib);
    ctx.run_ssta();

    const TopKSelection top = select_top_k(ctx, SelectorConfig{}, 8);
    ASSERT_GE(top.picks.size(), 2u);

    // Independent check of the batch invariant: the picks' level-bounded
    // cones (re-timed edge endpoints expanded forward up to
    // BatchConeFilter::kConeDepth levels past each gate) are pairwise
    // node-disjoint, and their re-timed edge sets are pairwise disjoint —
    // no pick's commit re-times another pick's delay basis or its
    // immediate evaluation neighbourhood.
    struct Footprint {
        std::vector<bool> nodes, edges;
    };
    const auto footprint_of = [&ctx](GateId g) {
        Footprint fp;
        fp.nodes.assign(ctx.graph().node_count(), false);
        fp.edges.assign(ctx.graph().edge_count(), false);
        const std::uint32_t cap =
            ctx.graph().gate_level(g) + BatchConeFilter::kConeDepth;
        std::vector<NodeId> stack;
        const auto push = [&](NodeId n) {
            if (n == netlist::TimingGraph::sink() ||
                n == netlist::TimingGraph::source())
                return;
            if (ctx.graph().level(n) > cap || fp.nodes[n.index()]) return;
            fp.nodes[n.index()] = true;
            stack.push_back(n);
        };
        for (EdgeId e : ctx.delay_calc().affected_edges(g)) {
            fp.edges[e.index()] = true;
            push(ctx.graph().edge(e).from);
            push(ctx.graph().edge(e).to);
        }
        while (!stack.empty()) {
            const NodeId n = stack.back();
            stack.pop_back();
            for (EdgeId e : ctx.graph().out_edges(n)) push(ctx.graph().edge(e).to);
        }
        return fp;
    };
    std::vector<Footprint> prints;
    for (const RankedPick& pick : top.picks) prints.push_back(footprint_of(pick.gate));
    for (std::size_t i = 0; i < prints.size(); ++i) {
        for (std::size_t j = i + 1; j < prints.size(); ++j) {
            for (std::size_t n = 0; n < prints[i].nodes.size(); ++n)
                ASSERT_FALSE(prints[i].nodes[n] && prints[j].nodes[n])
                    << "bounded cones of picks " << i << " and " << j
                    << " meet at node " << n;
            for (std::size_t e = 0; e < prints[i].edges.size(); ++e)
                ASSERT_FALSE(prints[i].edges[e] && prints[j].edges[e])
                    << "picks " << i << " and " << j << " re-time edge " << e;
        }
    }
}

// The keystone of the footprint filter: a recording front's changed-node
// set equals, bit for bit, the node set the engine's incremental update
// recomputes-and-changes when the same resize is committed.
TEST(BatchCommit, FrontFootprintMatchesEngineUpdate) {
    cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = netlist::make_iscas("c432", lib);
    Context ctx(nl, lib);
    ctx.run_ssta();

    for (const std::uint32_t gid : {1u, 40u, 90u, 150u}) {
        const GateId g{gid};
        std::vector<NodeId> front_changed;
        {
            TrialResize trial(ctx, g, 0.25);
            PerturbationFront front(ctx, Objective{}, trial, true);
            while (!front.completed()) front.propagate_one_level(ctx);
            front_changed = front.changed_nodes();
        }
        (void)ctx.apply_resize(g, 0.25);
        ctx.refresh_ssta();
        std::vector<NodeId> engine_changed(ctx.engine().last_changed_nodes().begin(),
                                           ctx.engine().last_changed_nodes().end());
        std::sort(front_changed.begin(), front_changed.end());
        std::sort(engine_changed.begin(), engine_changed.end());
        EXPECT_EQ(front_changed, engine_changed) << "gate " << gid;
        // Undo for the next gate (bit-exact restore: 0.25 steps).
        (void)ctx.apply_resize(g, -0.25);
        ctx.refresh_ssta();
    }
}

TEST(BatchCommit, TopKRejectsZeroK) {
    cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = netlist::make_iscas("c17", lib);
    Context ctx(nl, lib);
    ctx.run_ssta();
    EXPECT_THROW((void)select_top_k(ctx, SelectorConfig{}, 0), ConfigError);
}

// Satellite regression: every committed gate must appear in the history
// with its own sensitivity and exact area/width attribution (the old
// multi-gate loop recorded only the last gate of each iteration).
TEST(BatchCommit, HistoryRecordsEveryCommittedGate) {
    cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = netlist::make_iscas("c432", lib);
    Context ctx(nl, lib);
    StatisticalSizerConfig cfg;
    cfg.max_iterations = 2;
    cfg.gates_per_iteration = 3;
    const SizingResult result = run_statistical_sizing(ctx, cfg);

    ASSERT_EQ(result.history.size(), 6u);
    double prev_width = 176.0;  // c432 min-size total width
    double prev_area = result.initial_area;
    std::size_t passes_with_stats = 0;
    for (std::size_t i = 0; i < result.history.size(); ++i) {
        const IterationRecord& rec = result.history[i];
        EXPECT_TRUE(rec.gate.is_valid()) << i;
        EXPECT_GT(rec.sensitivity, 0.0) << i;
        EXPECT_EQ(rec.iteration, static_cast<int>(i / 3) + 1) << i;
        EXPECT_NEAR(rec.width_after - prev_width, cfg.delta_w, 1e-12) << i;
        EXPECT_GT(rec.area_after, prev_area) << i;
        prev_width = rec.width_after;
        prev_area = rec.area_after;
        if (rec.stats.candidates > 0) ++passes_with_stats;
    }
    // Selector accounting appears exactly once per pass.
    EXPECT_EQ(passes_with_stats, result.selector_passes);
    EXPECT_GE(result.selector_passes, 2u);   // at least one per iteration
    EXPECT_NEAR(nl.total_width() - 176.0, 6 * cfg.delta_w, 1e-9);
}

// Satellite regression: a converged top-up selection must not trigger a
// refresh on the already-clean engine. Every engine revision is the
// initial run plus exactly one refresh per committing pass.
TEST(BatchCommit, NoRedundantRefreshOnConvergedSelection) {
    cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = netlist::make_iscas("c17", lib);
    Context ctx(nl, lib);
    StatisticalSizerConfig cfg;
    cfg.max_iterations = 100000;
    cfg.gates_per_iteration = 4;
    cfg.max_width = 2.0;  // tight cap forces convergence
    const SizingResult result = run_statistical_sizing(ctx, cfg);
    EXPECT_EQ(result.stop_reason, "converged");

    std::size_t committing_passes = 0;
    for (const auto& rec : result.history)
        if (rec.stats.candidates > 0) ++committing_passes;
    EXPECT_EQ(ctx.engine().revision(), 1u + committing_passes);
}

// Criticality consumers see one merged multi-edge update; the cached
// incremental path must stay bitwise equal to a from-scratch pass.
TEST(BatchCommit, CriticalityBitIdenticalAfterBatchedCommit) {
    cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = netlist::make_iscas("c432", lib);
    Context ctx(nl, lib);
    ctx.run_ssta();
    ssta::IncrementalCriticality inc(ctx.graph());
    (void)inc.refresh(ctx.engine(), ctx.edge_delays());

    const TopKSelection top = select_top_k(ctx, SelectorConfig{}, 6);
    ASSERT_GE(top.picks.size(), 2u);
    std::vector<ResizeOp> ops;
    for (const RankedPick& pick : top.picks) ops.push_back({pick.gate, 0.25});
    (void)ctx.apply_resizes(ops);
    ctx.refresh_ssta();

    const ssta::CriticalityResult& cached = inc.refresh(ctx.engine(), ctx.edge_delays());
    const ssta::CriticalityResult scratch =
        ssta::compute_criticality(ctx.engine(), ctx.edge_delays());
    ASSERT_EQ(cached.edge.size(), scratch.edge.size());
    for (std::size_t e = 0; e < scratch.edge.size(); ++e)
        EXPECT_EQ(cached.edge[e], scratch.edge[e]) << "edge " << e;
    for (std::size_t n = 0; n < scratch.node.size(); ++n)
        EXPECT_EQ(cached.node[n], scratch.node[n]) << "node " << n;
}

TEST(BatchCommit, EnvBatchResolvesDefaultKnob) {
    cells::Library lib = cells::Library::standard_180nm();
    // Preserve any ambient STATIM_BATCH (e.g. the CI batched leg) so the
    // remaining suites of a direct binary run keep their configuration.
    const char* ambient = std::getenv("STATIM_BATCH");
    const std::string saved = ambient ? ambient : "";
    ::setenv("STATIM_BATCH", "3", 1);
    {
        Netlist nl = netlist::make_iscas("c432", lib);
        Context ctx(nl, lib);
        StatisticalSizerConfig cfg;  // gates_per_iteration stays 0 = auto
        cfg.max_iterations = 2;
        const SizingResult result = run_statistical_sizing(ctx, cfg);
        EXPECT_EQ(result.history.size(), 6u);
    }
    {
        // An explicit config always beats the environment.
        Netlist nl = netlist::make_iscas("c432", lib);
        Context ctx(nl, lib);
        StatisticalSizerConfig cfg;
        cfg.max_iterations = 2;
        cfg.gates_per_iteration = 2;
        const SizingResult result = run_statistical_sizing(ctx, cfg);
        EXPECT_EQ(result.history.size(), 4u);
    }
    if (ambient) ::setenv("STATIM_BATCH", saved.c_str(), 1);
    else ::unsetenv("STATIM_BATCH");
}

}  // namespace
}  // namespace statim::core
