// Unit tests for statistical criticality propagation.
#include <gtest/gtest.h>

#include <string>

#include "core/context.hpp"
#include "netlist/iscas.hpp"
#include "ssta/criticality.hpp"
#include "sta/sta.hpp"
#include "util/rng.hpp"

namespace statim::ssta {
namespace {

using core::Context;
using netlist::Netlist;
using netlist::TimingGraph;

/// PI -> INV -> INV -> PO chain: one path, criticality 1 everywhere.
Netlist make_chain(const cells::Library& lib) {
    Netlist nl("chain");
    const NetId a = nl.add_net("a");
    const NetId m = nl.add_net("m");
    const NetId y = nl.add_net("y");
    nl.mark_primary_input(a);
    const CellId inv = lib.require("INV");
    (void)nl.add_gate("g1", inv, {a}, m);
    (void)nl.add_gate("g2", inv, {m}, y);
    nl.mark_primary_output(y);
    nl.validate(lib);
    return nl;
}

TEST(Criticality, SinglePathIsFullyCritical) {
    const cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = make_chain(lib);
    Context ctx(nl, lib);
    ctx.run_ssta();
    const CriticalityResult crit = compute_criticality(ctx.engine(), ctx.edge_delays());

    for (std::size_t n = 0; n < ctx.graph().node_count(); ++n)
        EXPECT_NEAR(crit.node[n], 1.0, 1e-9) << "node " << n;
    for (std::size_t e = 0; e < ctx.graph().edge_count(); ++e)
        EXPECT_NEAR(crit.edge[e], 1.0, 1e-9) << "edge " << e;
}

TEST(Criticality, SymmetricForkSplitsEvenly) {
    // Two identical INV branches from two PIs into a NAND2: each branch
    // carries criticality ~0.5.
    const cells::Library lib = cells::Library::standard_180nm();
    Netlist nl("fork");
    const NetId a = nl.add_net("a");
    const NetId b = nl.add_net("b");
    const NetId ma = nl.add_net("ma");
    const NetId mb = nl.add_net("mb");
    const NetId y = nl.add_net("y");
    nl.mark_primary_input(a);
    nl.mark_primary_input(b);
    const CellId inv = lib.require("INV");
    (void)nl.add_gate("ga", inv, {a}, ma);
    (void)nl.add_gate("gb", inv, {b}, mb);
    (void)nl.add_gate("gy", lib.require("NAND2"), {ma, mb}, y);
    nl.mark_primary_output(y);
    nl.validate(lib);

    Context ctx(nl, lib);
    ctx.run_ssta();
    const CriticalityResult crit = compute_criticality(ctx.engine(), ctx.edge_delays());
    EXPECT_NEAR(crit.node[TimingGraph::node_of_net(ma).index()], 0.5, 0.05);
    EXPECT_NEAR(crit.node[TimingGraph::node_of_net(mb).index()], 0.5, 0.05);
    EXPECT_NEAR(crit.node[TimingGraph::sink().index()], 1.0, 1e-12);
}

class CriticalityInvariants : public ::testing::TestWithParam<const char*> {};

TEST_P(CriticalityInvariants, ConservationAndRange) {
    const cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = netlist::make_iscas(GetParam(), lib);
    Context ctx(nl, lib);
    ctx.run_ssta();
    const CriticalityResult crit = compute_criticality(ctx.engine(), ctx.edge_delays());
    const auto& graph = ctx.graph();

    // Range and per-node conservation: a node's criticality equals the sum
    // over its in-edges, and the source collects everything (~1).
    for (std::size_t n = 0; n < graph.node_count(); ++n) {
        const NodeId node{static_cast<std::uint32_t>(n)};
        EXPECT_GE(crit.node[n], -1e-12);
        EXPECT_LE(crit.node[n], 1.0 + 1e-9);
        const auto in = graph.in_edges(node);
        if (in.empty()) continue;
        double sum = 0.0;
        for (EdgeId e : in) sum += crit.edge[e.index()];
        EXPECT_NEAR(sum, crit.node[n], 1e-9) << "node " << n;
    }
    EXPECT_NEAR(crit.node[TimingGraph::source().index()], 1.0, 1e-6);
}

TEST_P(CriticalityInvariants, NominalCriticalPathIsStatisticallyHot) {
    // Every gate on the nominal critical path should carry clearly
    // non-trivial statistical criticality.
    const cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = netlist::make_iscas(GetParam(), lib);
    Context ctx(nl, lib);
    ctx.run_ssta();
    const CriticalityResult crit = compute_criticality(ctx.engine(), ctx.edge_delays());

    const sta::StaResult sta = sta::run_sta(ctx.delay_calc());
    const auto path = sta::critical_path(ctx.delay_calc(), sta);
    double min_crit = 1.0;
    for (EdgeId e : path)
        min_crit = std::min(min_crit, crit.node[ctx.graph().edge(e).to.index()]);
    EXPECT_GT(min_crit, 0.01);
}

INSTANTIATE_TEST_SUITE_P(Circuits, CriticalityInvariants,
                         ::testing::Values("c17", "c432", "c880"));

TEST(Criticality, RankGatesIsSortedAndComplete) {
    const cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = netlist::make_iscas("c17", lib);
    Context ctx(nl, lib);
    ctx.run_ssta();
    const CriticalityResult crit = compute_criticality(ctx.engine(), ctx.edge_delays());
    const auto ranked = rank_gates_by_criticality(ctx.graph(), crit);
    ASSERT_EQ(ranked.size(), nl.gate_count());
    for (std::size_t i = 1; i < ranked.size(); ++i)
        EXPECT_GE(ranked[i - 1].second, ranked[i].second);
}

TEST(Criticality, RequiresSstaRun) {
    const cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = netlist::make_iscas("c17", lib);
    Context ctx(nl, lib);
    EXPECT_THROW((void)compute_criticality(ctx.engine(), ctx.edge_delays()),
                 ConfigError);
    IncrementalCriticality inc(ctx.graph());
    EXPECT_THROW((void)inc.refresh(ctx.engine(), ctx.edge_delays()), ConfigError);
}

// ---- incremental refresh == from-scratch reference ----------------------

void expect_crit_equal(const CriticalityResult& a, const CriticalityResult& b,
                       const std::string& label) {
    ASSERT_EQ(a.edge.size(), b.edge.size());
    ASSERT_EQ(a.node.size(), b.node.size());
    for (std::size_t e = 0; e < a.edge.size(); ++e)
        ASSERT_EQ(a.edge[e], b.edge[e]) << label << ": edge " << e;
    for (std::size_t n = 0; n < a.node.size(); ++n)
        ASSERT_EQ(a.node[n], b.node[n]) << label << ": node " << n;
}

class IncrementalCriticalitySweep : public ::testing::TestWithParam<const char*> {};

TEST_P(IncrementalCriticalitySweep, ResizeSequenceMatchesFromScratchBitForBit) {
    const cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = netlist::make_iscas(GetParam(), lib);
    Context ctx(nl, lib);
    ctx.run_ssta();

    IncrementalCriticality inc(ctx.graph());
    expect_crit_equal(inc.refresh(ctx.engine(), ctx.edge_delays()),
                      compute_criticality(ctx.engine(), ctx.edge_delays()), "initial");

    Rng rng(hash_name(GetParam()));
    const auto gate_count = static_cast<std::uint32_t>(nl.gate_count());
    std::size_t incremental_refreshes = 0;
    for (int step = 0; step < 10; ++step) {
        const GateId g{static_cast<std::uint32_t>(rng() % gate_count)};
        (void)ctx.apply_resize(g, 0.25);
        ctx.refresh_ssta();
        const auto& result = inc.refresh(ctx.engine(), ctx.edge_delays(), 2);
        expect_crit_equal(result,
                          compute_criticality(ctx.engine(), ctx.edge_delays()),
                          std::string(GetParam()) + " step " + std::to_string(step));
        // The split recomputation must stay cone-scoped, not full-graph.
        if (!ctx.engine().last_update_stats().full_run) {
            ++incremental_refreshes;
            EXPECT_LT(inc.last_splits_recomputed(), ctx.graph().node_count());
        }
    }
    EXPECT_GT(incremental_refreshes, 0u);
}

INSTANTIATE_TEST_SUITE_P(Circuits, IncrementalCriticalitySweep,
                         ::testing::Values("c17", "c432", "c880"));

TEST(IncrementalCriticalityEngine, NoChangeRefreshDoesNoSplitWork) {
    const cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = netlist::make_iscas("c432", lib);
    Context ctx(nl, lib);
    ctx.run_ssta();

    IncrementalCriticality inc(ctx.graph());
    (void)inc.refresh(ctx.engine(), ctx.edge_delays());
    const CriticalityResult before = inc.result();

    // An update() that recomputes nothing (empty dirty set) must be a
    // cached no-op for the criticality too.
    ctx.engine().update(ctx.edge_delays(), {});
    EXPECT_EQ(ctx.engine().last_update_stats().nodes_recomputed, 0u);
    (void)inc.refresh(ctx.engine(), ctx.edge_delays());
    EXPECT_EQ(inc.last_splits_recomputed(), 0u);
    expect_crit_equal(inc.result(), before, "no-op refresh");
}

TEST(IncrementalCriticalityEngine, SameRevisionRefreshIsCached) {
    const cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = netlist::make_iscas("c432", lib);
    Context ctx(nl, lib);
    ctx.run_ssta();

    IncrementalCriticality inc(ctx.graph());
    (void)inc.refresh(ctx.engine(), ctx.edge_delays());
    EXPECT_GT(inc.last_splits_recomputed(), 0u);
    const CriticalityResult before = inc.result();

    // A second consumer querying the same engine state must hit the cache.
    (void)inc.refresh(ctx.engine(), ctx.edge_delays());
    EXPECT_EQ(inc.last_splits_recomputed(), 0u);
    expect_crit_equal(inc.result(), before, "same-revision refresh");
}

TEST(IncrementalCriticalityEngine, MissedRevisionFallsBackToFullPass) {
    const cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = netlist::make_iscas("c432", lib);
    Context ctx(nl, lib);
    ctx.run_ssta();

    IncrementalCriticality inc(ctx.graph());
    (void)inc.refresh(ctx.engine(), ctx.edge_delays());

    // Two engine refreshes between criticality refreshes: the change
    // journal only covers the last one, so the next refresh must not
    // trust it.
    (void)ctx.apply_resize(GateId{1}, 0.25);
    ctx.refresh_ssta();
    (void)ctx.apply_resize(GateId{2}, 0.25);
    ctx.refresh_ssta();
    expect_crit_equal(inc.refresh(ctx.engine(), ctx.edge_delays()),
                      compute_criticality(ctx.engine(), ctx.edge_delays()),
                      "missed revision");
}

}  // namespace
}  // namespace statim::ssta
