// Level-parallel propagation and arena-backed PDFs must be bit-identical
// to the serial, vector-backed reference — the contract every reported
// number in the paper tables rests on. Properties checked:
//  * convolve/stat_max into an arena == the heap-vector operators,
//    including across slab growth and mark/rewind reuse;
//  * SstaEngine::run and ::update produce bitwise-equal arrivals for
//    thread counts {1, 2, 7, hardware_concurrency} on randomized
//    circuits and along random resize sequences;
//  * whole statistical-sizing trajectories are thread-count independent
//    with the level-parallel engine underneath.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/context.hpp"
#include "core/sizers.hpp"
#include "netlist/generator.hpp"
#include "netlist/iscas.hpp"
#include "prob/gaussian.hpp"
#include "prob/ops.hpp"
#include "ssta/engine.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace statim {
namespace {

using netlist::Netlist;

/// Random contiguous-support PDF with `bins` mass bins starting at `first`.
prob::Pdf random_pdf(Rng& rng, std::int64_t first, int bins) {
    std::vector<double> mass(static_cast<std::size_t>(bins));
    for (double& m : mass) m = rng.uniform(1e-6, 1.0);
    return prob::Pdf::from_mass(first, std::move(mass));
}

TEST(ArenaOps, ConvolveMatchesVectorBackend) {
    Rng rng(42);
    prob::PdfArena arena;
    for (int trial = 0; trial < 50; ++trial) {
        const prob::Pdf a = random_pdf(rng, rng.uniform_int(-40, 40),
                                       static_cast<int>(rng.uniform_int(1, 60)));
        const prob::Pdf b = random_pdf(rng, rng.uniform_int(-40, 40),
                                       static_cast<int>(rng.uniform_int(1, 60)));
        const prob::ScopedRewind scope(arena);
        EXPECT_TRUE(prob::convolve_into(arena, a, b).to_pdf() == prob::convolve(a, b));
    }
}

TEST(ArenaOps, StatMaxMatchesVectorBackend) {
    Rng rng(43);
    prob::PdfArena arena;
    for (int trial = 0; trial < 50; ++trial) {
        const prob::Pdf a = random_pdf(rng, rng.uniform_int(-40, 40),
                                       static_cast<int>(rng.uniform_int(1, 60)));
        const prob::Pdf b = random_pdf(rng, rng.uniform_int(-40, 40),
                                       static_cast<int>(rng.uniform_int(1, 60)));
        const prob::ScopedRewind scope(arena);
        EXPECT_TRUE(prob::stat_max_into(arena, a, b).to_pdf() == prob::stat_max(a, b));
    }
}

TEST(ArenaOps, ChainedFoldSurvivesSlabGrowthAndRewind) {
    // A deep fold (like one high-fanin node's evaluation) repeated across
    // rewinds: slab memory is reused verbatim and results never change.
    Rng rng(44);
    std::vector<prob::Pdf> inputs;
    for (int i = 0; i < 12; ++i)
        inputs.push_back(random_pdf(rng, rng.uniform_int(0, 20),
                                    static_cast<int>(rng.uniform_int(2, 200))));

    prob::Pdf reference;
    for (std::size_t i = 0; i + 1 < inputs.size(); i += 2) {
        const prob::Pdf conv = prob::convolve(inputs[i], inputs[i + 1]);
        reference = reference.valid() ? prob::stat_max(reference, conv) : conv;
    }

    prob::PdfArena arena;
    for (int round = 0; round < 3; ++round) {
        const prob::ScopedRewind scope(arena);
        prob::PdfView acc;
        for (std::size_t i = 0; i + 1 < inputs.size(); i += 2) {
            const prob::PdfView conv =
                prob::convolve_into(arena, inputs[i], inputs[i + 1]);
            acc = acc.valid() ? prob::stat_max_into(arena, acc, conv) : conv;
        }
        EXPECT_TRUE(acc.to_pdf() == reference) << "round " << round;
    }
}

TEST(ArenaOps, ViewShiftsAreFreeAndExact) {
    Rng rng(45);
    const prob::Pdf a = random_pdf(rng, 5, 9);
    prob::PdfView v{a};
    v.shift(7);
    EXPECT_EQ(v.first_bin(), a.first_bin() + 7);
    EXPECT_EQ(v.mass().data(), a.mass().data());  // no copy
    prob::Pdf shifted = a;
    shifted.shift(7);
    EXPECT_TRUE(v.to_pdf() == shifted);
}

// ---- engine: thread-count independence ----------------------------------

Netlist parallel_test_circuit(const cells::Library& lib, std::uint64_t seed) {
    netlist::GeneratorSpec spec;
    spec.name = "gen_par";
    spec.num_inputs = 24;
    spec.num_outputs = 16;
    spec.num_gates = 600;
    spec.fanin_sum = 1320;
    spec.depth = 18;
    spec.seed = seed;
    return netlist::generate_circuit(spec, lib);
}

std::vector<std::size_t> sweep_thread_counts() {
    return {1, 2, 7, static_cast<std::size_t>(std::thread::hardware_concurrency())};
}

TEST(ParallelSsta, RunIsBitwiseIdenticalAcrossThreadCounts) {
    const cells::Library lib = cells::Library::standard_180nm();
    for (const std::uint64_t seed : {11u, 12u}) {
        Netlist nl = parallel_test_circuit(lib, seed);
        core::Context ctx(nl, lib);

        ctx.set_ssta_threads(1);
        ctx.run_ssta();
        std::vector<prob::Pdf> reference;
        for (std::size_t n = 0; n < ctx.graph().node_count(); ++n)
            reference.push_back(
                ctx.engine().arrival(NodeId{static_cast<std::uint32_t>(n)}).to_pdf());

        for (const std::size_t threads : sweep_thread_counts()) {
            ctx.set_ssta_threads(threads);
            ctx.run_ssta();
            for (std::size_t n = 0; n < reference.size(); ++n)
                ASSERT_TRUE(ctx.engine().arrival(NodeId{static_cast<std::uint32_t>(n)}) ==
                            reference[n])
                    << "seed " << seed << " threads " << threads << " node " << n;
        }
    }
}

TEST(ParallelSsta, UpdateIsBitwiseIdenticalAcrossThreadCounts) {
    const cells::Library lib = cells::Library::standard_180nm();
    const auto counts = sweep_thread_counts();

    // One context per thread count, all driven through the same resize
    // sequence; every state along the way must agree with the serial one.
    std::vector<Netlist> netlists;
    std::vector<std::unique_ptr<core::Context>> ctxs;
    netlists.reserve(counts.size());
    for (std::size_t k = 0; k < counts.size(); ++k)
        netlists.push_back(parallel_test_circuit(lib, 21));
    for (std::size_t k = 0; k < counts.size(); ++k) {
        ctxs.push_back(std::make_unique<core::Context>(netlists[k], lib));
        ctxs[k]->set_ssta_threads(counts[k]);
        ctxs[k]->run_ssta();
    }

    Rng rng(77);
    const auto gate_count = static_cast<std::uint32_t>(netlists[0].gate_count());
    for (int step = 0; step < 12; ++step) {
        const GateId g{static_cast<std::uint32_t>(rng() % gate_count)};
        const double delta = (rng() % 2 == 0) ? 0.25 : 0.5;
        for (auto& ctx : ctxs) {
            (void)ctx->apply_resize(g, delta);
            ctx->refresh_ssta();
        }
        const auto& ref = *ctxs[0];
        for (std::size_t k = 1; k < ctxs.size(); ++k) {
            ASSERT_EQ(ctxs[k]->engine().last_update_stats().nodes_recomputed,
                      ref.engine().last_update_stats().nodes_recomputed)
                << "step " << step << " threads " << counts[k];
            for (std::size_t n = 0; n < ref.graph().node_count(); ++n)
                ASSERT_TRUE(ctxs[k]->engine().arrival(NodeId{static_cast<std::uint32_t>(n)}) ==
                            ref.engine().arrival(NodeId{static_cast<std::uint32_t>(n)}))
                    << "step " << step << " threads " << counts[k] << " node " << n;
        }
    }
}

TEST(ParallelSsta, ChangeJournalTracksCommittedNodes) {
    const cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = netlist::make_iscas("c432", lib);
    core::Context ctx(nl, lib);
    ctx.set_ssta_threads(3);
    ctx.run_ssta();
    const std::uint64_t rev0 = ctx.engine().revision();

    const GateId g{static_cast<std::uint32_t>(nl.gate_count() / 3)};
    (void)ctx.apply_resize(g, 0.25);
    ctx.refresh_ssta();

    const auto& engine = ctx.engine();
    EXPECT_EQ(engine.revision(), rev0 + 1);
    EXPECT_FALSE(engine.last_update_stats().full_run);
    EXPECT_FALSE(engine.last_changed_edges().empty());
    EXPECT_EQ(engine.last_changed_nodes().size(),
              engine.last_update_stats().nodes_recomputed -
                  engine.last_update_stats().nodes_unchanged);
    // Journal order is (level, id) ascending — the serial commit order.
    for (std::size_t i = 1; i < engine.last_changed_nodes().size(); ++i) {
        const NodeId a = engine.last_changed_nodes()[i - 1];
        const NodeId b = engine.last_changed_nodes()[i];
        const bool ordered = ctx.graph().level(a) < ctx.graph().level(b) ||
                             (ctx.graph().level(a) == ctx.graph().level(b) &&
                              a.value < b.value);
        EXPECT_TRUE(ordered) << "journal out of order at " << i;
    }
}

TEST(ParallelSsta, RebuildTimingIsThreadCountIndependent) {
    const cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = parallel_test_circuit(lib, 31);
    core::Context ctx(nl, lib);

    std::vector<double> ref_delays(ctx.delay_calc().edge_delays_ns().begin(),
                                   ctx.delay_calc().edge_delays_ns().end());
    std::vector<prob::Pdf> ref_pdfs;
    for (std::size_t e = 0; e < ctx.graph().edge_count(); ++e)
        ref_pdfs.push_back(ctx.edge_delays().pdf(EdgeId{static_cast<std::uint32_t>(e)}));

    for (const std::size_t threads : sweep_thread_counts()) {
        ctx.set_ssta_threads(threads);
        ctx.rebuild_timing();  // 0 = use ssta_threads()
        for (std::size_t e = 0; e < ref_pdfs.size(); ++e) {
            const EdgeId edge{static_cast<std::uint32_t>(e)};
            ASSERT_EQ(ctx.delay_calc().edge_delay_ns(edge), ref_delays[e])
                << "threads " << threads << " edge " << e;
            ASSERT_TRUE(ctx.edge_delays().pdf(edge) == ref_pdfs[e])
                << "threads " << threads << " edge " << e;
        }
        EXPECT_TRUE(ctx.delay_calc().fully_dirty());
    }
}

TEST(ParallelSizing, TrajectoryIndependentOfSstaThreads) {
    const cells::Library lib = cells::Library::standard_180nm();
    std::vector<std::pair<GateId, double>> reference;
    for (const std::size_t threads : {std::size_t{1}, std::size_t{5}}) {
        Netlist nl = netlist::make_iscas("c432", lib);
        core::Context ctx(nl, lib);
        core::StatisticalSizerConfig cfg;
        cfg.max_iterations = 12;
        cfg.threads = threads;
        const core::SizingResult r = core::run_statistical_sizing(ctx, cfg);
        ASSERT_EQ(r.history.size(), 12u);
        if (threads == 1) {
            for (const auto& rec : r.history)
                reference.emplace_back(rec.gate, rec.objective_after_ns);
        } else {
            for (std::size_t i = 0; i < r.history.size(); ++i) {
                EXPECT_EQ(reference[i].first, r.history[i].gate) << "iter " << i;
                EXPECT_EQ(reference[i].second, r.history[i].objective_after_ns)
                    << "iter " << i;
            }
        }
    }
}

}  // namespace
}  // namespace statim
