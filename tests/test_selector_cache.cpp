// Exactness of the selector's cross-pass work-avoidance layers (the
// criticality-floor two-phase partition and the revision-keyed
// sensitivity cache, src/core/sensitivity_cache.hpp): every selection
// and every sizing trajectory must be bitwise identical with the layers
// on or off, across commit sequences, thread counts, batch sizes and
// forced SIMD levels. Also the regression test for
// sample_candidate_gates' duplicate-free contract.
//
// Suite names all start with SelectorCache so the CI TSan leg's
// --gtest_filter '*SelectorCache*' and the STATIM_CRIT_FLOOR=0 Release
// leg's -R filter both catch them.
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "core/context.hpp"
#include "core/selector.hpp"
#include "core/sensitivity_cache.hpp"
#include "core/sizers.hpp"
#include "netlist/iscas.hpp"
#include "prob/kernels/kernels.hpp"
#include "util/rng.hpp"

namespace statim::core {
namespace {

using netlist::Netlist;

bool heavy_tests() {
    const char* env = std::getenv("STATIM_HEAVY_TESTS");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
}

#ifdef NDEBUG
constexpr bool kOptimizedBuild = true;
#else
constexpr bool kOptimizedBuild = false;
#endif

/// Restores the process-wide SIMD dispatch and selector env knobs a test
/// forces; selector tests must not leak state into the rest of the suite.
class EnvGuard {
  public:
    EnvGuard()
        : level_(prob::kernels::active().level),
          fast_math_(prob::kernels::active().fast_math) {}
    ~EnvGuard() {
        prob::kernels::force(level_, fast_math_);
        ::unsetenv("STATIM_CRIT_FLOOR");
        ::unsetenv("STATIM_SELECTOR_CACHE");
    }
    EnvGuard(const EnvGuard&) = delete;
    EnvGuard& operator=(const EnvGuard&) = delete;

  private:
    prob::kernels::Level level_;
    bool fast_math_;
};

/// The layers under test: floor < 0 resolves STATIM_CRIT_FLOOR (default
/// 0.05), floor == 0 disables the partition; the cache defaults off in
/// raw SelectorConfig, so tests opt in explicitly.
SelectorConfig make_config(std::size_t threads, double crit_floor, bool cache) {
    return SelectorConfig{Objective::percentile(0.99), 0.25, 16.0,
                          threads,                     crit_floor, cache};
}

void expect_selection_equal(const Selection& got, const Selection& ref,
                            const std::string& label) {
    EXPECT_EQ(got.gate, ref.gate) << label;
    EXPECT_EQ(got.sensitivity, ref.sensitivity) << label;  // bitwise
}

/// The selector's accounting identity: every candidate is completed,
/// pruned or died, and cache replays never invent or drop candidates.
void expect_stats_consistent(const SelectorStats& s, const std::string& label) {
    EXPECT_EQ(s.candidates, s.completed + s.pruned + s.died) << label;
    EXPECT_LE(s.cache_hits, s.completed + s.died) << label;
    EXPECT_LE(s.floor_deferred, s.candidates) << label;
}

// ---- satellite: sample_candidate_gates is duplicate free -----------------

TEST(SelectorCacheSample, SampleCandidateGatesIsDuplicateFree) {
    const cells::Library lib = cells::Library::standard_180nm();
    for (const char* circuit : {"c17", "c432", "c880"}) {
        Netlist nl = netlist::make_iscas(circuit, lib);
        Context ctx(nl, lib);
        ctx.run_ssta();
        // Small counts make the ranked head and the stride sweep overlap
        // (a critical gate's id lands on a stride point) — exactly the
        // case that used to emit duplicates.
        for (const std::size_t count :
             {std::size_t{4}, std::size_t{8}, std::size_t{24}, std::size_t{96},
              nl.gate_count(), 4 * nl.gate_count()}) {
            const std::vector<GateId> gates = sample_candidate_gates(ctx, count);
            std::set<std::uint32_t> seen;
            for (GateId g : gates) {
                EXPECT_LT(g.index(), nl.gate_count()) << circuit;
                EXPECT_TRUE(seen.insert(g.value).second)
                    << circuit << ": duplicate gate " << g.value << " in a "
                    << count << "-gate sample";
            }
            EXPECT_LE(gates.size(), std::min(count, nl.gate_count())) << circuit;
        }
    }
}

// ---- SensitivityCache unit invariants ------------------------------------

TEST(SelectorCacheUnit, LookupKeysOnRevisionWidthStepAndObjective) {
    SensitivityCache cache;
    cache.bind(8, 16);
    const GateId g{3};
    const std::vector<NodeId> support{NodeId{4}, NodeId{5}};
    const Objective p99 = Objective::percentile(0.99);
    cache.store(g, 0.25, 1.0, p99, 7, 0.125, false, support);

    SensitivityCache::Replay replay;
    ASSERT_TRUE(cache.lookup(g, 0.25, 1.0, p99, 7, replay));
    EXPECT_EQ(replay.sensitivity, 0.125);
    EXPECT_FALSE(replay.completed_sink);

    // Any key component moving is a miss: revision, width step, current
    // width (bitwise), objective kind or percentile point.
    EXPECT_FALSE(cache.lookup(g, 0.25, 1.0, p99, 8, replay));
    EXPECT_FALSE(cache.lookup(g, 0.5, 1.0, p99, 7, replay));
    EXPECT_FALSE(cache.lookup(g, 0.25, 1.25, p99, 7, replay));
    EXPECT_FALSE(cache.lookup(g, 0.25, 1.0, Objective::percentile(0.95), 7, replay));
    EXPECT_FALSE(cache.lookup(g, 0.25, 1.0, Objective::mean(), 7, replay));
    EXPECT_FALSE(cache.lookup(GateId{4}, 0.25, 1.0, p99, 7, replay));

    EXPECT_EQ(cache.valid_entries(), 1u);
    cache.invalidate_all();
    EXPECT_EQ(cache.valid_entries(), 0u);
    EXPECT_FALSE(cache.lookup(g, 0.25, 1.0, p99, 7, replay));
}

TEST(SelectorCacheUnit, OversizedSupportsAreNeverStored) {
    SensitivityCache cache;
    cache.bind(4, 4096);
    std::vector<NodeId> support;
    for (std::uint32_t n = 0; n <= SensitivityCache::kMaxSupportNodes; ++n)
        support.push_back(NodeId{n});
    const Objective p99 = Objective::percentile(0.99);
    cache.store(GateId{0}, 0.25, 1.0, p99, 1, 0.5, true, support);
    SensitivityCache::Replay replay;
    EXPECT_FALSE(cache.lookup(GateId{0}, 0.25, 1.0, p99, 1, replay));
    EXPECT_EQ(cache.valid_entries(), 0u);

    // Exactly at the cap the entry is kept.
    support.pop_back();
    cache.store(GateId{0}, 0.25, 1.0, p99, 1, 0.5, true, support);
    EXPECT_TRUE(cache.lookup(GateId{0}, 0.25, 1.0, p99, 1, replay));
    EXPECT_EQ(replay.sensitivity, 0.5);
    EXPECT_TRUE(replay.completed_sink);
}

TEST(SelectorCacheUnit, RevisionMismatchOnStoreDropsStaleEntries) {
    SensitivityCache cache;
    cache.bind(4, 16);
    const Objective p99 = Objective::percentile(0.99);
    const std::vector<NodeId> support{NodeId{1}};
    cache.store(GateId{0}, 0.25, 1.0, p99, 3, 0.1, false, support);
    ASSERT_EQ(cache.valid_entries(), 1u);
    // A store against a different revision proves the cache missed an
    // engine update — everything cached before it is untrusted.
    cache.store(GateId{1}, 0.25, 1.0, p99, 4, 0.2, false, support);
    SensitivityCache::Replay replay;
    EXPECT_FALSE(cache.lookup(GateId{0}, 0.25, 1.0, p99, 3, replay));
    EXPECT_FALSE(cache.lookup(GateId{0}, 0.25, 1.0, p99, 4, replay));
    EXPECT_TRUE(cache.lookup(GateId{1}, 0.25, 1.0, p99, 4, replay));
    EXPECT_EQ(cache.synced_revision(), 4u);
}

// ---- criticality floor: partition exactness + stats ----------------------

TEST(SelectorCacheFloor, FloorPartitionMatchesPlainRace) {
    const cells::Library lib = cells::Library::standard_180nm();
    for (const char* circuit : {"c432", "c880", "c1355"}) {
        Netlist nl = netlist::make_iscas(circuit, lib);
        Context ctx(nl, lib);
        ctx.run_ssta();
        const Selection ref = select_pruned(ctx, make_config(1, 0.0, false));
        EXPECT_EQ(ref.stats.floor_deferred, 0u) << circuit;
        for (const double floor : {0.01, 0.05, 0.5, 0.99}) {
            for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
                const Selection got =
                    select_pruned(ctx, make_config(threads, floor, false));
                const std::string label = std::string(circuit) + " floor " +
                                          std::to_string(floor) + " threads " +
                                          std::to_string(threads);
                expect_selection_equal(got, ref, label);
                expect_stats_consistent(got.stats, label);
            }
        }
        // A mid floor on a real criticality profile must actually defer
        // work to the tail phase — otherwise the layer is dead code.
        const Selection mid = select_pruned(ctx, make_config(1, 0.5, false));
        EXPECT_GT(mid.stats.floor_deferred, 0u) << circuit;
    }
}

TEST(SelectorCacheFloor, EnvFloorResolutionAndKillSwitch) {
    EnvGuard guard;
    const cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = netlist::make_iscas("c880", lib);
    Context ctx(nl, lib);
    ctx.run_ssta();
    const Selection ref = select_pruned(ctx, make_config(1, 0.0, false));

    // crit_floor < 0 resolves STATIM_CRIT_FLOOR; 0 forces the partition
    // off regardless of the default.
    ::setenv("STATIM_CRIT_FLOOR", "0.5", 1);
    const Selection env_on = select_pruned(ctx, make_config(1, -1.0, false));
    expect_selection_equal(env_on, ref, "STATIM_CRIT_FLOOR=0.5");
    EXPECT_GT(env_on.stats.floor_deferred, 0u);

    ::setenv("STATIM_CRIT_FLOOR", "0", 1);
    const Selection env_off = select_pruned(ctx, make_config(1, -1.0, false));
    expect_selection_equal(env_off, ref, "STATIM_CRIT_FLOOR=0");
    EXPECT_EQ(env_off.stats.floor_deferred, 0u);

    // An explicit config floor wins over the environment.
    ::setenv("STATIM_CRIT_FLOOR", "0.9", 1);
    const Selection cfg_off = select_pruned(ctx, make_config(1, 0.0, false));
    expect_selection_equal(cfg_off, ref, "explicit 0 overrides env");
    EXPECT_EQ(cfg_off.stats.floor_deferred, 0u);
}

// ---- cache replay: hit accounting + bitwise identity ---------------------

TEST(SelectorCacheReplay, SteadyStatePassReplaysAndMatchesFresh) {
    const cells::Library lib = cells::Library::standard_180nm();
    Netlist nl_cached = netlist::make_iscas("c880", lib);
    Netlist nl_plain = netlist::make_iscas("c880", lib);
    Context cached(nl_cached, lib);
    Context plain(nl_plain, lib);
    cached.run_ssta();
    plain.run_ssta();
    const SelectorConfig cfg_cached = make_config(2, 0.05, true);
    const SelectorConfig cfg_plain = make_config(1, 0.0, false);

    const Selection first = select_pruned(cached, cfg_cached);
    EXPECT_EQ(first.stats.cache_hits, 0u);
    expect_selection_equal(first, select_pruned(plain, cfg_plain), "cold pass");

    // Unchanged engine: every stored (completed or died, support under
    // the cap) candidate replays; only the pruned remainder re-races.
    const Selection second = select_pruned(cached, cfg_cached);
    expect_selection_equal(second, first, "warm pass");
    expect_stats_consistent(second.stats, "warm pass");
    EXPECT_GT(second.stats.cache_hits, 0u);
    EXPECT_LT(second.stats.nodes_computed, first.stats.nodes_computed);
    EXPECT_GT(cached.sensitivity_cache().stats().hits, 0u);

    // After a commit the journal invalidates the commit's cone; the pass
    // on the refreshed state still matches the cache-free selector.
    ASSERT_TRUE(first.gate.is_valid());
    (void)cached.apply_resize(first.gate, cfg_cached.delta_w);
    (void)plain.apply_resize(first.gate, cfg_plain.delta_w);
    cached.refresh_ssta();
    plain.refresh_ssta();
    const Selection after = select_pruned(cached, cfg_cached);
    expect_selection_equal(after, select_pruned(plain, cfg_plain), "post-commit");
    expect_stats_consistent(after.stats, "post-commit");
}

TEST(SelectorCacheReplay, KillSwitchDisablesTheCache) {
    EnvGuard guard;
    ::setenv("STATIM_SELECTOR_CACHE", "0", 1);
    const cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = netlist::make_iscas("c432", lib);
    Context ctx(nl, lib);
    ctx.run_ssta();
    const SelectorConfig cfg = make_config(1, 0.0, true);
    const Selection first = select_pruned(ctx, cfg);
    const Selection second = select_pruned(ctx, cfg);
    expect_selection_equal(second, first, "kill switch");
    EXPECT_EQ(second.stats.cache_hits, 0u);
    EXPECT_EQ(ctx.sensitivity_cache().stats().stores, 0u);
}

// ---- adversarial commit sequences ----------------------------------------

/// Random commit sequences — upsizes of the pick itself (a commit inside
/// the cached winner's own cone), random off-path commits, downsizes,
/// and a tight width cap that moves gates on and off the eligible list —
/// with a cached+floored context checked against a plain one each step.
TEST(SelectorCacheAdversarial, RandomCommitSequencesMatchPlainSelector) {
    const cells::Library lib = cells::Library::standard_180nm();
    for (const char* circuit : {"c432", "c880"}) {
        Netlist nl_cached = netlist::make_iscas(circuit, lib);
        Netlist nl_plain = netlist::make_iscas(circuit, lib);
        Context cached(nl_cached, lib);
        Context plain(nl_plain, lib);
        cached.run_ssta();
        plain.run_ssta();

        // Tight cap: after a few upsizes gates start saturating, so the
        // candidate set itself changes between passes (the width-grid
        // edge case — a cached gate leaving or re-entering eligibility).
        SelectorConfig cfg_cached = make_config(2, 0.05, true);
        SelectorConfig cfg_plain = make_config(1, 0.0, false);
        cfg_cached.max_width = cfg_plain.max_width = 2.0;

        Rng rng(hash_name(circuit));
        const auto gate_count = static_cast<std::uint32_t>(nl_cached.gate_count());
        for (int step = 0; step < 24; ++step) {
            const std::string label =
                std::string(circuit) + " step " + std::to_string(step);
            const Selection got = select_pruned(cached, cfg_cached);
            const Selection ref = select_pruned(plain, cfg_plain);
            expect_selection_equal(got, ref, label);
            expect_stats_consistent(got.stats, label);

            if (step % 5 == 1) {
                // The batched path shares the cache too: top-k picks and
                // their ranking must agree as well.
                const TopKSelection topk_got =
                    select_top_k(cached, cfg_cached, 3, SelectorKind::Pruned);
                const TopKSelection topk_ref =
                    select_top_k(plain, cfg_plain, 3, SelectorKind::Pruned);
                ASSERT_EQ(topk_got.picks.size(), topk_ref.picks.size()) << label;
                for (std::size_t i = 0; i < topk_ref.picks.size(); ++i) {
                    EXPECT_EQ(topk_got.picks[i].gate, topk_ref.picks[i].gate)
                        << label << " pick " << i;
                    EXPECT_EQ(topk_got.picks[i].sensitivity,
                              topk_ref.picks[i].sensitivity)
                        << label << " pick " << i;
                }
            }

            // Commit: the pick itself (inside its cached cone), a random
            // gate, or a downsize (the journal must catch all three).
            GateId g = ref.gate;
            double delta = cfg_plain.delta_w;
            const auto roll = rng() % 4;
            if (!g.is_valid() || roll == 1) {
                g = GateId{static_cast<std::uint32_t>(rng() % gate_count)};
            } else if (roll == 2) {
                g = GateId{static_cast<std::uint32_t>(rng() % gate_count)};
                if (nl_plain.gate(g).width >= 1.25) delta = -0.25;
            }
            (void)cached.apply_resize(g, delta);
            (void)plain.apply_resize(g, delta);
            cached.refresh_ssta();
            plain.refresh_ssta();
        }
    }
}

// ---- full trajectories: threads x batch x layers -------------------------

struct StepRecord {
    GateId gate;
    double sensitivity;
    double objective;
};

std::vector<StepRecord> run_trajectory(const std::string& circuit,
                                       const cells::Library& lib, int iterations,
                                       std::size_t threads, int batch,
                                       double crit_floor, bool cache) {
    Netlist nl = netlist::make_iscas(circuit, lib);
    Context ctx(nl, lib);
    StatisticalSizerConfig cfg;
    cfg.max_iterations = iterations;
    cfg.threads = threads;
    cfg.gates_per_iteration = batch;
    cfg.crit_floor = crit_floor;
    cfg.selector_cache = cache;
    const SizingResult r = run_statistical_sizing(ctx, cfg);
    std::vector<StepRecord> out;
    out.reserve(r.history.size());
    for (const auto& rec : r.history)
        out.push_back({rec.gate, rec.sensitivity, rec.objective_after_ns});
    return out;
}

void expect_trajectories_equal(const std::vector<StepRecord>& got,
                               const std::vector<StepRecord>& ref,
                               const std::string& label) {
    ASSERT_EQ(got.size(), ref.size()) << label;
    for (std::size_t i = 0; i < ref.size(); ++i) {
        EXPECT_EQ(got[i].gate, ref[i].gate) << label << " iter " << i;
        EXPECT_EQ(got[i].sensitivity, ref[i].sensitivity) << label << " iter " << i;
        EXPECT_EQ(got[i].objective, ref[i].objective) << label << " iter " << i;
    }
}

class SelectorCacheTrajectory : public ::testing::TestWithParam<const char*> {};

TEST_P(SelectorCacheTrajectory, LayeredSizingBitIdenticalAcrossThreadsAndBatch) {
    const std::string circuit = GetParam();
    const bool big = circuit != "c432";
    if (big && circuit == "synth10k" && !heavy_tests())
        GTEST_SKIP() << "synth10k matrix runs under STATIM_HEAVY_TESTS=1";
    if (big && circuit == "c7552" && !kOptimizedBuild && !heavy_tests())
        GTEST_SKIP() << "c7552 matrix needs an optimized build "
                        "(STATIM_HEAVY_TESTS=1 forces it)";
    const int iterations = big ? 4 : 12;
    const cells::Library lib = cells::Library::standard_180nm();
    // The full batch axis runs on c432; the big circuits keep the two
    // interesting extremes so their default-suite cost stays bounded.
    const std::vector<int> batches = big ? std::vector<int>{1, 8}
                                         : std::vector<int>{1, 4, 8};
    for (const int batch : batches) {
        // Reference: both layers off, one thread.
        const std::vector<StepRecord> ref =
            run_trajectory(circuit, lib, iterations, 1, batch, 0.0, false);
        for (const std::size_t threads :
             {std::size_t{1}, std::size_t{2}, std::size_t{7}}) {
            const std::vector<StepRecord> got = run_trajectory(
                circuit, lib, iterations, threads, batch, 0.05, true);
            expect_trajectories_equal(
                got, ref,
                circuit + " batch " + std::to_string(batch) + " threads " +
                    std::to_string(threads));
        }
        // Each layer alone, too — a bug masked by the other layer's
        // interplay would hide from the combined run.
        expect_trajectories_equal(
            run_trajectory(circuit, lib, iterations, 2, batch, 0.0, true), ref,
            circuit + " batch " + std::to_string(batch) + " cache-only");
        expect_trajectories_equal(
            run_trajectory(circuit, lib, iterations, 2, batch, 0.05, false), ref,
            circuit + " batch " + std::to_string(batch) + " floor-only");
    }
}

INSTANTIATE_TEST_SUITE_P(Circuits, SelectorCacheTrajectory,
                         ::testing::Values("c432", "c7552", "synth10k"));

// ---- forced SIMD levels ---------------------------------------------------

TEST(SelectorCacheSimd, LayeredTrajectoryBitIdenticalAcrossForcedLevels) {
    std::vector<prob::kernels::Level> levels;
    for (const prob::kernels::Level l : prob::kernels::available_levels())
        if (l != prob::kernels::Level::Scalar) levels.push_back(l);
    if (levels.empty()) GTEST_SKIP() << "scalar-only host: nothing to cross-check";
    EnvGuard guard;
    const cells::Library lib = cells::Library::standard_180nm();
    prob::kernels::force(prob::kernels::Level::Scalar, false);
    const std::vector<StepRecord> ref =
        run_trajectory("c432", lib, 10, 1, 2, 0.0, false);
    for (const prob::kernels::Level level : levels) {
        prob::kernels::force(level, false);
        const std::vector<StepRecord> got =
            run_trajectory("c432", lib, 10, 2, 2, 0.05, true);
        expect_trajectories_equal(
            got, ref,
            std::string("level ") + prob::kernels::level_name(level));
    }
}

}  // namespace
}  // namespace statim::core
