// Unit tests for the approximate beam selector (the paper's future-work
// heuristic for fast most-sensitive-gate identification).
#include <gtest/gtest.h>

#include "core/selector.hpp"
#include "netlist/iscas.hpp"

namespace statim::core {
namespace {

using netlist::Netlist;

class HeuristicTest : public ::testing::Test {
  protected:
    HeuristicTest()
        : lib_(cells::Library::standard_180nm()),
          nl_(netlist::make_iscas("c432", lib_)),
          ctx_(nl_, lib_) {
        ctx_.run_ssta();
    }

    cells::Library lib_;
    Netlist nl_;
    Context ctx_;
    SelectorConfig sel_{Objective::percentile(0.99), 0.25, 16.0};
};

TEST_F(HeuristicTest, FullBeamEqualsExactSelection) {
    const Selection exact = select_pruned(ctx_, sel_);
    const Selection heur = select_heuristic(ctx_, sel_, nl_.gate_count());
    EXPECT_EQ(heur.gate, exact.gate);
    EXPECT_DOUBLE_EQ(heur.sensitivity, exact.sensitivity);
}

TEST_F(HeuristicTest, SmallBeamReturnsGoodCandidateFast) {
    const Selection exact = select_pruned(ctx_, sel_);
    const Selection heur = select_heuristic(ctx_, sel_, 8);
    ASSERT_TRUE(heur.gate.is_valid());
    EXPECT_GT(heur.sensitivity, 0.0);
    // Never better than exact; usually close (>= 50% here is a loose floor
    // that still catches gross regressions).
    EXPECT_LE(heur.sensitivity, exact.sensitivity);
    EXPECT_GE(heur.sensitivity, 0.5 * exact.sensitivity);
    // And it must do less work than exhaustive completion: accounting
    // covers every candidate, with all but the beam pruned unexplored.
    EXPECT_EQ(heur.stats.completed + heur.stats.died + heur.stats.pruned,
              heur.stats.candidates);
    EXPECT_GE(heur.stats.pruned, heur.stats.candidates - 8);
}

TEST_F(HeuristicTest, BeamOneCompletesOnlyTheTopBoundFront) {
    const Selection heur = select_heuristic(ctx_, sel_, 1);
    EXPECT_TRUE(heur.gate.is_valid());
    EXPECT_EQ(heur.stats.completed + heur.stats.died, 1u);
}

TEST_F(HeuristicTest, ZeroBeamThrows) {
    EXPECT_THROW((void)select_heuristic(ctx_, sel_, 0), ConfigError);
}

TEST_F(HeuristicTest, QualityImprovesWithBeam) {
    double last = 0.0;
    for (std::size_t beam : {1u, 4u, 16u, 64u}) {
        const Selection heur = select_heuristic(ctx_, sel_, beam);
        EXPECT_GE(heur.sensitivity, last - 1e-15) << "beam " << beam;
        last = heur.sensitivity;
    }
}

}  // namespace
}  // namespace statim::core
