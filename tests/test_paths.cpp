// Unit tests for K-longest-path enumeration.
#include <gtest/gtest.h>

#include <set>

#include "netlist/iscas.hpp"
#include "sta/paths.hpp"
#include "sta/sta.hpp"

namespace statim::sta {
namespace {

using netlist::Netlist;
using netlist::TimingGraph;

class PathsTest : public ::testing::Test {
  protected:
    PathsTest()
        : lib_(cells::Library::standard_180nm()),
          nl_(netlist::make_iscas("c432", lib_)),
          graph_(nl_),
          dc_(graph_, lib_) {}

    cells::Library lib_;
    Netlist nl_;
    TimingGraph graph_;
    DelayCalc dc_;
};

TEST_F(PathsTest, FirstPathMatchesCriticalPathDelay) {
    const StaResult sta = run_sta(dc_);
    const auto paths = k_longest_paths(dc_, 1);
    ASSERT_EQ(paths.size(), 1u);
    EXPECT_NEAR(paths[0].delay_ns, sta.circuit_delay_ns, 1e-9);
}

TEST_F(PathsTest, PathsAreSortedDescendingAndDistinct) {
    const auto paths = k_longest_paths(dc_, 25);
    ASSERT_EQ(paths.size(), 25u);
    std::set<std::vector<std::uint32_t>> seen;
    for (std::size_t i = 0; i < paths.size(); ++i) {
        if (i) EXPECT_GE(paths[i - 1].delay_ns, paths[i].delay_ns - 1e-12);
        std::vector<std::uint32_t> key;
        for (EdgeId e : paths[i].edges) key.push_back(e.value);
        EXPECT_TRUE(seen.insert(key).second) << "duplicate path at rank " << i;
    }
}

TEST_F(PathsTest, EveryPathIsConnectedSourceToSink) {
    for (const Path& path : k_longest_paths(dc_, 10)) {
        ASSERT_FALSE(path.edges.empty());
        EXPECT_EQ(graph_.edge(path.edges.front()).from, TimingGraph::source());
        EXPECT_EQ(graph_.edge(path.edges.back()).to, TimingGraph::sink());
        double sum = 0.0;
        for (std::size_t i = 0; i < path.edges.size(); ++i) {
            if (i)
                EXPECT_EQ(graph_.edge(path.edges[i - 1]).to,
                          graph_.edge(path.edges[i]).from);
            sum += dc_.edge_delay_ns(path.edges[i]);
        }
        EXPECT_NEAR(sum, path.delay_ns, 1e-9);
    }
}

TEST(PathsSmall, EnumeratesAllPathsOfTinyCircuit) {
    // c17 has exactly 11 source-to-sink paths (by manual counting of its
    // 6-NAND structure: every PI-to-PO pin path).
    const cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = netlist::make_iscas("c17", lib);
    const TimingGraph graph(nl);
    const DelayCalc dc(graph, lib);
    const auto paths = k_longest_paths(dc, 1000);
    EXPECT_EQ(paths.size(), 11u);
}

TEST(PathsSmall, KZeroThrows) {
    const cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = netlist::make_iscas("c17", lib);
    const TimingGraph graph(nl);
    const DelayCalc dc(graph, lib);
    EXPECT_THROW((void)k_longest_paths(dc, 0), ConfigError);
}

TEST(PathsSmall, ExpansionCapLimitsResults) {
    const cells::Library lib = cells::Library::standard_180nm();
    Netlist nl = netlist::make_iscas("c880", lib);
    const TimingGraph graph(nl);
    const DelayCalc dc(graph, lib);
    const auto some = k_longest_paths(dc, 1000, /*max_expansions=*/50);
    EXPECT_LT(some.size(), 1000u);  // cap hit before 1000 completions
}

}  // namespace
}  // namespace statim::sta
