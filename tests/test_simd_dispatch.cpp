// Forced-dispatch property suite: full SSTA under every available
// STATIM_SIMD level must be indistinguishable — arrivals, criticalities
// and selector picks bitwise identical to the scalar reference on the
// real circuits (c432, c7552, synth10k). This is the end-to-end teeth of
// the kernel layer's bit-exactness contract; the kernel-granular cases
// live in test_kernels.cpp. Also covers the api::Scenario / CLI `simd`
// knob surface.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "api/statim.hpp"
#include "core/context.hpp"
#include "core/selector.hpp"
#include "netlist/iscas.hpp"
#include "prob/kernels/kernels.hpp"
#include "ssta/criticality.hpp"
#include "util/error.hpp"

namespace statim {
namespace {

using netlist::Netlist;

class ForceGuard {
  public:
    ForceGuard()
        : level_(prob::kernels::active().level),
          fast_math_(prob::kernels::active().fast_math) {}
    ~ForceGuard() { prob::kernels::force(level_, fast_math_); }
    ForceGuard(const ForceGuard&) = delete;
    ForceGuard& operator=(const ForceGuard&) = delete;

  private:
    prob::kernels::Level level_;
    bool fast_math_;
};

std::vector<prob::kernels::Level> simd_levels() {
    std::vector<prob::kernels::Level> out;
    for (const prob::kernels::Level l : prob::kernels::available_levels())
        if (l != prob::kernels::Level::Scalar) out.push_back(l);
    return out;
}

bool heavy_tests() { return std::getenv("STATIM_HEAVY_TESTS") != nullptr; }

/// Everything one SSTA pass produces that the optimizer consumes.
struct CircuitSnapshot {
    std::vector<prob::Pdf> arrivals;
    std::vector<double> edge_crit, node_crit;
};

CircuitSnapshot snapshot(const std::string& circuit, const cells::Library& lib) {
    Netlist nl = netlist::make_iscas(circuit, lib);
    core::Context ctx(nl, lib);
    ctx.run_ssta();
    CircuitSnapshot snap;
    snap.arrivals.reserve(ctx.graph().node_count());
    for (std::size_t n = 0; n < ctx.graph().node_count(); ++n)
        snap.arrivals.push_back(
            ctx.engine().arrival(NodeId{static_cast<std::uint32_t>(n)}).to_pdf());
    const ssta::CriticalityResult crit =
        ssta::compute_criticality(ctx.engine(), ctx.edge_delays());
    snap.edge_crit = crit.edge;
    snap.node_crit = crit.node;
    return snap;
}

bool bits_equal(const prob::Pdf& a, const prob::Pdf& b) {
    if (a.first_bin() != b.first_bin() || a.size() != b.size()) return false;
    return std::memcmp(a.mass().data(), b.mass().data(),
                       a.size() * sizeof(double)) == 0;
}

bool bits_equal(const std::vector<double>& a, const std::vector<double>& b) {
    return a.size() == b.size() &&
           std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

TEST(SimdDispatch, ArrivalsAndCriticalityBitIdenticalAcrossLevels) {
    const auto levels = simd_levels();
    if (levels.empty()) GTEST_SKIP() << "scalar-only host: nothing to cross-check";
    ForceGuard guard;
    const cells::Library lib = cells::Library::standard_180nm();
    for (const char* circuit : {"c432", "c7552", "synth10k"}) {
        prob::kernels::force(prob::kernels::Level::Scalar, false);
        const CircuitSnapshot ref = snapshot(circuit, lib);
        for (const prob::kernels::Level level : levels) {
            prob::kernels::force(level, false);
            const CircuitSnapshot got = snapshot(circuit, lib);
            ASSERT_EQ(got.arrivals.size(), ref.arrivals.size());
            for (std::size_t n = 0; n < ref.arrivals.size(); ++n)
                ASSERT_TRUE(bits_equal(got.arrivals[n], ref.arrivals[n]))
                    << circuit << " node " << n << " arrival differs under "
                    << prob::kernels::level_name(level);
            EXPECT_TRUE(bits_equal(got.edge_crit, ref.edge_crit))
                << circuit << " edge criticality differs under "
                << prob::kernels::level_name(level);
            EXPECT_TRUE(bits_equal(got.node_crit, ref.node_crit))
                << circuit << " node criticality differs under "
                << prob::kernels::level_name(level);
        }
    }
}

TEST(SimdDispatch, SelectorPicksBitIdenticalAcrossLevels) {
    const auto levels = simd_levels();
    if (levels.empty()) GTEST_SKIP() << "scalar-only host: nothing to cross-check";
    ForceGuard guard;
    const cells::Library lib = cells::Library::standard_180nm();
    // synth10k costs ~30 s per selector pass on one core; the two ISCAS
    // circuits cover the property by default, the registry circuit runs
    // under STATIM_HEAVY_TESTS=1 (same rule as the checkpoint matrix).
    std::vector<std::string> circuits{"c432", "c7552"};
    if (heavy_tests()) circuits.emplace_back("synth10k");
    for (const std::string& circuit : circuits) {
        const auto select_under = [&](prob::kernels::Level level) {
            prob::kernels::force(level, false);
            Netlist nl = netlist::make_iscas(circuit, lib);
            core::Context ctx(nl, lib);
            ctx.run_ssta();
            const core::SelectorConfig cfg{core::Objective::percentile(0.99),
                                           0.25, 16.0};
            return core::select_pruned(ctx, cfg);
        };
        const core::Selection ref = select_under(prob::kernels::Level::Scalar);
        for (const prob::kernels::Level level : levels) {
            const core::Selection got = select_under(level);
            EXPECT_EQ(got.gate, ref.gate)
                << circuit << ": pick differs under "
                << prob::kernels::level_name(level);
            EXPECT_TRUE(std::memcmp(&got.sensitivity, &ref.sensitivity,
                                    sizeof(double)) == 0)
                << circuit << ": sensitivity differs under "
                << prob::kernels::level_name(level);
        }
    }
}

TEST(SimdDispatch, ScenarioSimdKnobIsBitwiseNeutral) {
    ForceGuard guard;
    const api::Design design = api::Design::from_registry("c432");
    api::Scenario scalar_scn;
    scalar_scn.simd = "scalar";
    const api::AnalysisResult ref = api::analyze(design, scalar_scn);
    EXPECT_EQ(prob::kernels::active().level, prob::kernels::Level::Scalar);

    for (const prob::kernels::Level level : simd_levels()) {
        api::Scenario scn;
        scn.simd = prob::kernels::level_name(level);
        const api::AnalysisResult got = api::analyze(design, scn);
        EXPECT_EQ(prob::kernels::active().level, level);
        EXPECT_TRUE(bits_equal(got.sink, ref.sink));
        EXPECT_TRUE(std::memcmp(&got.objective_ns, &ref.objective_ns,
                                sizeof(double)) == 0);
    }

    // "auto" restores environment/CPUID resolution even after a forced
    // scenario ran in this process.
    api::Scenario auto_scn;
    const api::AnalysisResult got = api::analyze(design, auto_scn);
    EXPECT_TRUE(bits_equal(got.sink, ref.sink));
}

TEST(SimdDispatch, ScenarioRejectsUnknownSimdName) {
    api::Scenario s;
    s.simd = "sse9";
    EXPECT_THROW(s.validate(), ConfigError);
    s.simd = "auto";
    EXPECT_NO_THROW(s.validate());
    s.simd = "scalar";
    EXPECT_NO_THROW(s.validate());
}

}  // namespace
}  // namespace statim
