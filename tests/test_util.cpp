// Unit tests for src/util: RNG, stats, CSV/table writers, CLI, env, log.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <sstream>

#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/env.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/running_stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "util/types.hpp"

namespace statim {
namespace {

TEST(StrongId, DefaultIsInvalid) {
    NetId id;
    EXPECT_FALSE(id.is_valid());
    EXPECT_EQ(id, NetId::invalid());
}

TEST(StrongId, DistinctTagsAreDistinctTypes) {
    static_assert(!std::is_same_v<NetId, GateId>);
    NetId a{3};
    NetId b{3};
    NetId c{4};
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    EXPECT_LT(a, c);
    EXPECT_EQ(a.index(), 3u);
}

TEST(StrongId, Hashable) {
    std::hash<GateId> h;
    EXPECT_EQ(h(GateId{5}), h(GateId{5}));
}

TEST(Rng, DeterministicForSeed) {
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) same += (a() == b());
    EXPECT_LT(same, 4);
}

TEST(Rng, UniformInUnitInterval) {
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.uniform_int(3, 7);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 7);
        saw_lo |= (v == 3);
        saw_hi |= (v == 7);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
    Rng rng(11);
    double sum = 0.0, sum2 = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double z = rng.normal();
        sum += z;
        sum2 += z * z;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.01);
    EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(Rng, TruncatedNormalRespectsBounds) {
    Rng rng(13);
    for (int i = 0; i < 20000; ++i) {
        const double x = rng.truncated_normal(10.0, 2.0, 3.0);
        EXPECT_GE(x, 4.0);
        EXPECT_LE(x, 16.0);
    }
}

TEST(Rng, TruncatedNormalDegenerateSigma) {
    Rng rng(17);
    EXPECT_EQ(rng.truncated_normal(5.0, 0.0, 3.0), 5.0);
}

TEST(Rng, SplitProducesIndependentStream) {
    Rng a(23);
    Rng b = a.split();
    int same = 0;
    for (int i = 0; i < 64; ++i) same += (a() == b());
    EXPECT_LT(same, 4);
}

TEST(Rng, HashNameStableAndSpread) {
    EXPECT_EQ(hash_name("c432"), hash_name("c432"));
    EXPECT_NE(hash_name("c432"), hash_name("c433"));
}

TEST(RunningStats, Empty) {
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_TRUE(std::isnan(s.min()));
}

TEST(RunningStats, KnownSequence) {
    RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Timer, MeasuresElapsedTime) {
    Timer t;
    volatile double x = 0;
    for (int i = 0; i < 100000; ++i) x = x + 1;
    EXPECT_GE(t.seconds(), 0.0);
    EXPECT_GE(t.millis(), t.seconds() * 1000.0 - 1e-9);
}

TEST(Csv, HeaderAndRows) {
    std::ostringstream out;
    CsvWriter csv(out, {"a", "b"});
    csv.row({"1", "2"});
    csv.row({"x,y", "q\"z"});
    EXPECT_EQ(out.str(), "a,b\n1,2\n\"x,y\",\"q\"\"z\"\n");
    EXPECT_EQ(csv.rows_written(), 2u);
}

TEST(Csv, RowSizeMismatchThrows) {
    std::ostringstream out;
    CsvWriter csv(out, {"a", "b"});
    EXPECT_THROW(csv.row({"only-one"}), std::invalid_argument);
}

TEST(Csv, FormatDouble) {
    EXPECT_EQ(format_double(1.5), "1.5");
    EXPECT_EQ(format_double(0.123456789, 3), "0.123");
}

TEST(AsciiTable, AlignsColumns) {
    AsciiTable t({"name", "value"});
    t.add_row({"x", "1"});
    t.add_row({"long-name", "23"});
    std::ostringstream out;
    t.print(out);
    const std::string rendered = out.str();
    EXPECT_NE(rendered.find("| name      |"), std::string::npos);
    EXPECT_NE(rendered.find("|    23 |"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Cli, ParsesFlagsAndPositionals) {
    // A non-flag token right after `--name` is taken as its value, so
    // positionals go before flags or after `--name=value` forms.
    const char* argv[] = {"prog", "pos1", "--alpha", "3", "--beta=x", "--gamma"};
    CliArgs args(6, argv);
    EXPECT_EQ(args.get_int("alpha", 0), 3);
    EXPECT_EQ(args.get("beta"), "x");
    EXPECT_TRUE(args.has("gamma"));
    EXPECT_TRUE(args.get_bool("gamma", false));
    ASSERT_EQ(args.positional().size(), 1u);
    EXPECT_EQ(args.positional()[0], "pos1");
    EXPECT_EQ(args.program(), "prog");
}

TEST(Cli, BooleansAndDefaults) {
    const char* argv[] = {"prog", "--on", "--off=false"};
    CliArgs args(3, argv);
    EXPECT_TRUE(args.get_bool("on", false));
    EXPECT_FALSE(args.get_bool("off", true));
    EXPECT_TRUE(args.get_bool("missing", true));
    EXPECT_EQ(args.get_double("missing", 2.5), 2.5);
}

TEST(Cli, MalformedNumbersThrow) {
    const char* argv[] = {"prog", "--n=abc"};
    CliArgs args(2, argv);
    EXPECT_THROW((void)args.get_int("n", 0), ConfigError);
    EXPECT_THROW((void)args.get_double("n", 0), ConfigError);
}

TEST(Cli, ValidateRejectsUnknown) {
    const char* argv[] = {"prog", "--known", "--oops"};
    CliArgs args(3, argv);
    EXPECT_THROW(args.validate({"known"}), ConfigError);
    EXPECT_NO_THROW(args.validate({"known", "oops"}));
}

TEST(Cli, ValidateErrorListsValidOptions) {
    // The typo case the CLI hits: --thread instead of --threads. The
    // error must name the offender and every valid flag.
    const char* argv[] = {"prog", "--thread", "4"};
    CliArgs args(3, argv);
    try {
        args.validate({"threads", "iterations"});
        FAIL() << "validate() accepted an unknown flag";
    } catch (const ConfigError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("--thread"), std::string::npos) << what;
        EXPECT_NE(what.find("--threads"), std::string::npos) << what;
        EXPECT_NE(what.find("--iterations"), std::string::npos) << what;
    }
}

TEST(Env, ReadsAndDefaults) {
    ::setenv("STATIM_TEST_INT", "41", 1);
    ::setenv("STATIM_TEST_BAD", "xyz", 1);
    EXPECT_EQ(env_int("STATIM_TEST_INT", 0), 41);
    EXPECT_EQ(env_int("STATIM_TEST_BAD", 7), 7);
    EXPECT_EQ(env_int("STATIM_TEST_UNSET_VAR", 9), 9);
    EXPECT_EQ(env_double("STATIM_TEST_INT", 0.0), 41.0);
    ::unsetenv("STATIM_TEST_INT");
    ::unsetenv("STATIM_TEST_BAD");
}

TEST(Log, ParseLevels) {
    EXPECT_EQ(parse_log_level("debug"), LogLevel::Debug);
    EXPECT_EQ(parse_log_level("WARN"), LogLevel::Warn);
    EXPECT_EQ(parse_log_level("off"), LogLevel::Off);
    EXPECT_EQ(parse_log_level("unknown"), LogLevel::Info);
}

TEST(Log, ThresholdFilters) {
    const LogLevel before = log_level();
    set_log_level(LogLevel::Error);
    EXPECT_FALSE(log_enabled(LogLevel::Info));
    EXPECT_TRUE(log_enabled(LogLevel::Error));
    set_log_level(before);
}

TEST(Error, ParseErrorCarriesLocation) {
    const ParseError e("file.bench", 12, "bad token");
    EXPECT_EQ(e.file(), "file.bench");
    EXPECT_EQ(e.line(), 12);
    EXPECT_NE(std::string(e.what()).find("file.bench:12"), std::string::npos);
}

}  // namespace
}  // namespace statim
