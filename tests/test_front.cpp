// Unit tests for TrialResize and PerturbationFront: RAII restoration,
// sensitivity agreement with a from-scratch SSTA, bound monotonicity
// (Theorem 4 end-to-end), and dead-front handling.
#include <gtest/gtest.h>

#include "core/front.hpp"
#include "core/trial_resize.hpp"
#include "netlist/iscas.hpp"
#include "prob/ops.hpp"

namespace statim::core {
namespace {

using netlist::Netlist;
using netlist::TimingGraph;

/// Full SSTA with a live trial, into a scratch vector (reference result).
prob::Pdf reference_sink(Context& ctx) {
    const auto& graph = ctx.graph();
    std::vector<prob::Pdf> scratch(graph.node_count());
    scratch[TimingGraph::source().index()] = prob::Pdf::point(0);
    const auto arrival_of = [&scratch](NodeId u) -> const prob::Pdf& {
        return scratch[u.index()];
    };
    const auto delay_of = [&ctx](EdgeId e) -> const prob::Pdf& {
        return ctx.edge_delays().pdf(e);
    };
    for (NodeId n : graph.topo_order()) {
        if (n == TimingGraph::source()) continue;
        scratch[n.index()] = ssta::compute_arrival(graph, n, arrival_of, delay_of);
    }
    return scratch[TimingGraph::sink().index()];
}

class FrontTest : public ::testing::Test {
  protected:
    FrontTest()
        : lib_(cells::Library::standard_180nm()),
          nl_(netlist::make_iscas("c17", lib_)),
          ctx_(nl_, lib_) {
        ctx_.run_ssta();
    }

    cells::Library lib_;
    Netlist nl_;
    Context ctx_;
};

TEST_F(FrontTest, TrialResizeRestoresEverythingBitwise) {
    const GateId g{2};
    const double width_before = nl_.gate(g).width;
    const auto edges = ctx_.delay_calc().affected_edges(g);
    std::vector<double> nominals_before;
    std::vector<prob::Pdf> pdfs_before;
    for (EdgeId e : edges) {
        nominals_before.push_back(ctx_.delay_calc().edge_delay_ns(e));
        pdfs_before.push_back(ctx_.edge_delays().pdf(e));
    }
    {
        TrialResize trial(ctx_, g, 0.5);
        EXPECT_DOUBLE_EQ(nl_.gate(g).width, width_before + 0.5);
        EXPECT_NE(ctx_.delay_calc().edge_delay_ns(edges[0]), nominals_before[0]);
        EXPECT_FALSE(ctx_.edge_delays().pdf(edges[0]) == pdfs_before[0]);
        EXPECT_EQ(trial.changed_edges(), edges);
    }
    EXPECT_DOUBLE_EQ(nl_.gate(g).width, width_before);
    for (std::size_t i = 0; i < edges.size(); ++i) {
        EXPECT_DOUBLE_EQ(ctx_.delay_calc().edge_delay_ns(edges[i]), nominals_before[i]);
        EXPECT_EQ(ctx_.edge_delays().pdf(edges[i]), pdfs_before[i]);
    }
}

TEST_F(FrontTest, SensitivityMatchesFullReferenceForEveryGate) {
    const Objective obj = Objective::percentile(0.99);
    const double dt = ctx_.grid().dt_ns();
    const double base = obj.eval_bins(ctx_.engine().sink_arrival());

    for (std::size_t gi = 0; gi < nl_.gate_count(); ++gi) {
        const GateId g{static_cast<std::uint32_t>(gi)};
        TrialResize trial(ctx_, g, 0.25);
        const prob::Pdf ref_sink = reference_sink(ctx_);
        const double ref_sens = (base - obj.eval_bins(ref_sink)) * dt / 0.25;

        PerturbationFront front(ctx_, obj, trial);
        while (!front.completed()) front.propagate_one_level(ctx_);
        EXPECT_DOUBLE_EQ(front.sensitivity(), ref_sens) << "gate " << gi;
        if (front.sink_pdf().valid())
            EXPECT_EQ(front.sink_pdf(), ref_sink) << "gate " << gi;
    }
}

TEST_F(FrontTest, BoundIsMonotoneAndDominatesFinalSensitivity) {
    const Objective obj = Objective::percentile(0.99);
    // One bin of bound movement, in sensitivity units (FP knot ties).
    const double bin_slack = ctx_.grid().dt_ns() / 0.25;
    for (std::size_t gi = 0; gi < nl_.gate_count(); ++gi) {
        const GateId g{static_cast<std::uint32_t>(gi)};
        TrialResize trial(ctx_, g, 0.25);
        PerturbationFront front(ctx_, obj, trial);
        std::vector<double> bounds;
        while (!front.completed()) {
            bounds.push_back(front.bound_sensitivity());
            front.propagate_one_level(ctx_);
        }
        for (std::size_t i = 1; i < bounds.size(); ++i)
            EXPECT_LE(bounds[i], bounds[i - 1] + bin_slack + 1e-12) << "gate " << gi;
        for (double b : bounds)
            EXPECT_GE(b, front.sensitivity() - 1e-9) << "gate " << gi;
    }
}

TEST_F(FrontTest, RequiresSstaBeforeConstruction) {
    Netlist nl = netlist::make_iscas("c17", lib_);
    Context fresh(nl, lib_);
    TrialResize trial(fresh, GateId{0}, 0.25);
    EXPECT_THROW((PerturbationFront{fresh, Objective{}, trial}), ConfigError);
}

TEST(FrontDeadPath, PerturbationAbsorbedByDominatingSideInput) {
    // y = NAND2(m, e) where e arrives via a 7-inverter chain and m via a
    // single inverter: even at ±3σ the two branch supports are disjoint,
    // so resizing g1 (driving m) perturbs m but never the max at y. The
    // front must die with sensitivity exactly 0.
    cells::Library lib = cells::Library::standard_180nm();
    Netlist nl("deadpath");
    const NetId a = nl.add_net("a");
    const NetId b = nl.add_net("b");
    const NetId m = nl.add_net("m");
    const NetId y = nl.add_net("y");
    nl.mark_primary_input(a);
    nl.mark_primary_input(b);
    const CellId inv = lib.require("INV");
    const GateId g1 = nl.add_gate("g1", inv, {a}, m);
    NetId prev = b;
    for (int s = 0; s < 7; ++s) {
        const NetId next = nl.add_net("c" + std::to_string(s));
        (void)nl.add_gate("chain" + std::to_string(s), inv, {prev}, next);
        prev = next;
    }
    const NetId e = prev;
    (void)nl.add_gate("g5", lib.require("NAND2"), {m, e}, y);
    nl.mark_primary_output(y);
    nl.validate(lib);

    Context ctx(nl, lib);
    ctx.run_ssta();
    TrialResize trial(ctx, g1, 0.25);
    PerturbationFront front(ctx, Objective::percentile(0.99), trial);
    while (!front.completed()) front.propagate_one_level(ctx);
    EXPECT_DOUBLE_EQ(front.sensitivity(), 0.0);
    EXPECT_FALSE(front.sink_pdf().valid());  // died before the sink
    EXPECT_GE(front.stats().dead_drops, 1u);
}

TEST_F(FrontTest, StatsArepopulated) {
    TrialResize trial(ctx_, GateId{0}, 0.25);
    PerturbationFront front(ctx_, Objective::percentile(0.99), trial);
    while (!front.completed()) front.propagate_one_level(ctx_);
    EXPECT_GT(front.stats().nodes_computed, 0u);
    EXPECT_GT(front.stats().levels_stepped, 0u);
    EXPECT_EQ(front.gate(), GateId{0});
}

}  // namespace
}  // namespace statim::core
