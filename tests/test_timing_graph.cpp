// Unit tests for the timing graph (Definition 1 of the paper).
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "netlist/bench_io.hpp"
#include "netlist/iscas.hpp"
#include "netlist/timing_graph.hpp"

namespace statim::netlist {
namespace {

class C17Graph : public ::testing::Test {
  protected:
    C17Graph() : lib_(cells::Library::standard_180nm()),
                 nl_(make_iscas("c17", lib_)),
                 graph_(nl_) {}

    cells::Library lib_;
    Netlist nl_;
    TimingGraph graph_;
};

TEST_F(C17Graph, CountsMatchDefinition) {
    // c17: 5 PIs + 6 gate outputs = 11 nets; +2 virtual nodes.
    EXPECT_EQ(graph_.node_count(), 13u);
    // 12 NAND2 pins + 5 source edges + 2 sink edges.
    EXPECT_EQ(graph_.edge_count(), 19u);
}

TEST_F(C17Graph, SourceAndSinkAreTerminal) {
    EXPECT_TRUE(graph_.in_edges(TimingGraph::source()).empty());
    EXPECT_TRUE(graph_.out_edges(TimingGraph::sink()).empty());
    EXPECT_EQ(graph_.out_edges(TimingGraph::source()).size(), 5u);  // PIs
    EXPECT_EQ(graph_.in_edges(TimingGraph::sink()).size(), 2u);     // POs
}

TEST_F(C17Graph, LevelsStrictlyIncreaseAlongEdges) {
    for (std::size_t ei = 0; ei < graph_.edge_count(); ++ei) {
        const auto& e = graph_.edge(EdgeId{static_cast<std::uint32_t>(ei)});
        EXPECT_LT(graph_.level(e.from), graph_.level(e.to));
    }
    EXPECT_EQ(graph_.level(TimingGraph::source()), 0u);
    EXPECT_EQ(graph_.num_levels(), graph_.level(TimingGraph::sink()) + 1);
}

TEST_F(C17Graph, SinkAloneOnTopLevel) {
    const auto top = graph_.nodes_at_level(graph_.num_levels() - 1);
    ASSERT_EQ(top.size(), 1u);
    EXPECT_EQ(top[0], TimingGraph::sink());
}

TEST_F(C17Graph, C17Depth) {
    // c17 is three NAND levels deep: source(0) PI(1) N10/N11(2) N16/N19(3)
    // N22/N23(4) sink(5)... N10 reads PIs only (level 2); N22 reads N10 and
    // N16 so level 4.
    EXPECT_EQ(graph_.num_levels(), 6u);
}

TEST_F(C17Graph, GateEdgesAreContiguousAndComplete) {
    std::set<std::uint32_t> seen;
    for (std::size_t gi = 0; gi < nl_.gate_count(); ++gi) {
        const GateId g{static_cast<std::uint32_t>(gi)};
        const auto edges = graph_.gate_edges(g);
        ASSERT_EQ(edges.size(), nl_.gate(g).fanin.size());
        for (std::size_t pin = 0; pin < edges.size(); ++pin) {
            const auto& e = graph_.edge(edges[pin]);
            EXPECT_EQ(e.gate, g);
            EXPECT_EQ(e.pin, pin);
            EXPECT_EQ(e.to, graph_.output_node(g));
            EXPECT_EQ(e.from, TimingGraph::node_of_net(nl_.gate(g).fanin[pin]));
            EXPECT_TRUE(seen.insert(edges[pin].value).second);
        }
    }
    EXPECT_EQ(seen.size(), 12u);  // all gate edges distinct
}

TEST_F(C17Graph, NetNodeMappingRoundTrips) {
    for (std::size_t ni = 0; ni < nl_.net_count(); ++ni) {
        const NetId net{static_cast<std::uint32_t>(ni)};
        const NodeId node = TimingGraph::node_of_net(net);
        EXPECT_EQ(graph_.net_of_node(node), net);
    }
    EXPECT_FALSE(graph_.net_of_node(TimingGraph::source()).is_valid());
    EXPECT_FALSE(graph_.net_of_node(TimingGraph::sink()).is_valid());
}

TEST_F(C17Graph, TopoOrderRespectsEdges) {
    const auto topo = graph_.topo_order();
    std::vector<std::size_t> pos(graph_.node_count());
    for (std::size_t i = 0; i < topo.size(); ++i) pos[topo[i].index()] = i;
    for (std::size_t ei = 0; ei < graph_.edge_count(); ++ei) {
        const auto& e = graph_.edge(EdgeId{static_cast<std::uint32_t>(ei)});
        EXPECT_LT(pos[e.from.index()], pos[e.to.index()]);
    }
}

TEST_F(C17Graph, InOutAdjacencyConsistent) {
    std::size_t in_total = 0, out_total = 0;
    for (std::size_t n = 0; n < graph_.node_count(); ++n) {
        const NodeId node{static_cast<std::uint32_t>(n)};
        in_total += graph_.in_edges(node).size();
        out_total += graph_.out_edges(node).size();
        for (EdgeId e : graph_.in_edges(node)) EXPECT_EQ(graph_.edge(e).to, node);
        for (EdgeId e : graph_.out_edges(node)) EXPECT_EQ(graph_.edge(e).from, node);
    }
    EXPECT_EQ(in_total, graph_.edge_count());
    EXPECT_EQ(out_total, graph_.edge_count());
}

TEST_F(C17Graph, LevelBucketsPartitionNodes) {
    std::size_t total = 0;
    for (std::uint32_t l = 0; l < graph_.num_levels(); ++l) {
        for (NodeId n : graph_.nodes_at_level(l)) EXPECT_EQ(graph_.level(n), l);
        total += graph_.nodes_at_level(l).size();
    }
    EXPECT_EQ(total, graph_.node_count());
}

TEST(TimingGraphErrors, RejectsUnvalidatedCycle) {
    cells::Library lib = cells::Library::standard_180nm();
    Netlist nl;
    const NetId a = nl.add_net("a");
    const NetId x = nl.add_net("x");
    const NetId y = nl.add_net("y");
    nl.mark_primary_input(a);
    (void)nl.add_gate("g1", lib.require("NAND2"), {a, y}, x);
    (void)nl.add_gate("g2", lib.require("INV"), {x}, y);
    nl.mark_primary_output(y);
    EXPECT_THROW(TimingGraph{nl}, NetlistError);
}

}  // namespace
}  // namespace statim::netlist
